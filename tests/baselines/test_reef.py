"""Tests for the REEF-style reset-based comparator."""

import pytest

from repro.baselines import Priority, REEF
from repro.errors import SchedulerError
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor

SPEC = A100_SXM4_40GB


def setup():
    engine = EventLoop()
    device = GPUDevice(SPEC, engine)
    return REEF(device, engine), device, engine


def kernel(name="k", blocks=5000, bd=100e-6, tpb=256):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


class TestReefScheduling:
    def test_best_effort_completes_alone(self):
        policy, device, engine = setup()
        policy.register_client("be", Priority.BEST_EFFORT)
        done = []
        policy.submit("be", kernel(), lambda: done.append(engine.now))
        engine.run()
        assert done
        assert policy.resets == 0

    def test_hp_arrival_resets_best_effort(self):
        policy, device, engine = setup()
        policy.register_client("hp", Priority.HIGH)
        policy.register_client("be", Priority.BEST_EFFORT)
        done = {}
        policy.submit("be", kernel("be_k", blocks=20_000, bd=200e-6),
                      lambda: done.setdefault("be", engine.now))
        engine.schedule(1e-3, lambda: policy.submit(
            "hp", kernel("hp_k", blocks=100, bd=20e-6),
            lambda: done.setdefault("hp", engine.now)))
        engine.run()
        assert policy.resets >= 1
        assert policy.blocks_wasted > 0
        assert done["hp"] < done["be"]

    def test_turnaround_is_immediate(self):
        """The whole point of reset: the device is free the moment the
        kill lands — no waiting for blocks to drain."""
        policy, device, engine = setup()
        policy.register_client("hp", Priority.HIGH)
        policy.register_client("be", Priority.BEST_EFFORT)
        done = {}
        # Best-effort kernel with very long blocks that would otherwise
        # pin the device for 5 ms.
        policy.submit("be", kernel("be_k", blocks=2000, bd=5e-3),
                      lambda: done.setdefault("be", engine.now))
        submit_time = 1e-3

        def send_hp():
            policy.submit("hp", kernel("hp_k", blocks=800, bd=20e-6),
                          lambda: done.setdefault("hp", engine.now))

        engine.schedule(submit_time, send_hp)
        engine.run()
        hp_latency = done["hp"] - submit_time
        # Launch overhead + one wave; far below the 5 ms block time a
        # block-level scheduler would have to wait out.
        assert hp_latency < 1e-3

    def test_wasted_work_lowers_throughput(self):
        """Frequent resets re-execute work: REEF finishes the same
        best-effort kernel later than an uninterrupted run."""

        def run(with_hp):
            policy, device, engine = setup()
            policy.register_client("hp", Priority.HIGH)
            policy.register_client("be", Priority.BEST_EFFORT)
            done = {}
            remaining = [5]

            def next_be():
                if remaining[0] > 0:
                    remaining[0] -= 1
                    policy.submit("be", kernel("be_k", blocks=8640, bd=100e-6),
                                  next_be)
                else:
                    done["be"] = engine.now
            next_be()
            if with_hp:
                def hp_loop(i=0):
                    if i < 40:
                        policy.submit("hp", kernel("hp_k", blocks=50,
                                                   bd=20e-6),
                                      lambda: engine.schedule(
                                          0.2e-3, lambda: hp_loop(i + 1)))
                hp_loop()
            engine.run()
            return done["be"]

        assert run(with_hp=True) > run(with_hp=False)

    def test_stream_order_enforced(self):
        policy, device, engine = setup()
        policy.register_client("be", Priority.BEST_EFFORT)
        policy.submit("be", kernel(), lambda: None)
        with pytest.raises(SchedulerError, match="stream-ordered"):
            policy.submit("be", kernel(), lambda: None)


class TestDeviceKill:
    def test_kill_reclaims_resources_immediately(self):
        engine = EventLoop()
        device = GPUDevice(SPEC, engine)
        from repro.gpu import DeviceLaunch

        k = kernel(blocks=2000, bd=5e-3)
        launch = DeviceLaunch(k, client_id="a")
        device.submit(launch)
        engine.schedule(1e-3, lambda: device.kill(launch))
        engine.run_until(1.1e-3)
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots
        assert launch.blocks_killed > 0
        # The stale batch-completion event is a no-op.
        engine.run()
        assert device.threads_free == SPEC.total_threads

    def test_kill_after_done_is_noop(self):
        engine = EventLoop()
        device = GPUDevice(SPEC, engine)
        from repro.gpu import DeviceLaunch

        launch = DeviceLaunch(kernel(blocks=10), client_id="a")
        device.submit(launch)
        engine.run()
        device.kill(launch)
        assert launch.blocks_killed == 0
