"""Bench report schema, trajectory file handling, and the suite runner."""

import json

import pytest

from repro.bench.harness import (SCHEMA, BenchmarkResult, BenchReport,
                                 Phase, PhaseTimer, append_trajectory,
                                 run_suite)
from repro.errors import ReproError


def result(name="macro.x", wall=2.0, events=100_000):
    return BenchmarkResult(name=name, wall_s=wall, events=events,
                           phases=[Phase("simulate", wall, events)],
                           extra={"simulated_s": 10.0})


class TestSchemaRoundTrip:
    def test_report_round_trips_through_dict(self):
        report = BenchReport(benchmarks=[result()], label="seed",
                             scale="quick")
        data = report.to_dict()
        assert data["schema"] == SCHEMA
        assert data["label"] == "seed"
        assert "python" in data["platform"]
        restored = BenchReport.from_dict(data)
        assert restored.label == "seed"
        assert restored.scale == "quick"
        bench = restored.result("macro.x")
        assert bench.wall_s == 2.0
        assert bench.events == 100_000
        assert bench.phases == [Phase("simulate", 2.0, 100_000)]
        assert bench.extra == {"simulated_s": 10.0}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ReproError, match="schema"):
            BenchReport.from_dict({"schema": "repro-bench/99"})

    def test_events_per_s(self):
        assert result(wall=2.0, events=100_000).events_per_s == 50_000.0
        assert BenchmarkResult("x", 0.0, 10).events_per_s == 0.0

    def test_missing_benchmark_lookup_raises(self):
        report = BenchReport(benchmarks=[result()])
        with pytest.raises(ReproError, match="no benchmark"):
            report.result("macro.missing")

    def test_format_mentions_every_benchmark(self):
        report = BenchReport(benchmarks=[result(), result("micro.y")],
                             scale="smoke")
        text = report.format()
        assert "macro.x" in text and "micro.y" in text
        assert "peak RSS" in text


class TestTrajectory:
    def test_append_creates_then_extends(self, tmp_path):
        path = str(tmp_path / "BENCH_simulator.json")
        first = append_trajectory(path, BenchReport(benchmarks=[result()],
                                                    label="one"))
        assert len(first) == 1
        second = append_trajectory(path, BenchReport(benchmarks=[result()],
                                                     label="two"))
        assert len(second) == 2
        with open(path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert [e["label"] for e in on_disk] == ["one", "two"]
        assert all(e["schema"] == SCHEMA for e in on_disk)

    def test_append_rejects_non_list_file(self, tmp_path):
        path = tmp_path / "BENCH_simulator.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ReproError, match="list"):
            append_trajectory(str(path), BenchReport(benchmarks=[result()]))


class TestRunSuite:
    def test_runs_in_order_and_names_results(self):
        seen = []

        def bench(scale):
            seen.append(scale)
            return BenchmarkResult("placeholder", 1.0, 10)

        report = run_suite([("micro.a", bench), ("micro.b", bench)],
                           "smoke", label="test")
        assert seen == ["smoke", "smoke"]
        assert [b.name for b in report.benchmarks] == ["micro.a", "micro.b"]
        assert report.label == "test"

    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        timer.add("b", 1.5, events=3)
        assert [p.name for p in timer.phases] == ["a", "b"]
        assert timer.phases[1] == Phase("b", 1.5, 3)
