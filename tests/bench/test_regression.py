"""The perf regression gate: baseline comparison semantics."""

import json

import pytest

from repro.bench.harness import BenchmarkResult, BenchReport
from repro.bench.regression import compare_reports, load_report
from repro.errors import ReproError


def report(**eps_by_name):
    return BenchReport(benchmarks=[
        BenchmarkResult(name=name, wall_s=1.0, events=int(eps))
        for name, eps in eps_by_name.items()
    ])


def cached_report(eps, hit_rate=None):
    extra = {} if hit_rate is None else {"cache_hit_rate": hit_rate}
    return BenchReport(benchmarks=[
        BenchmarkResult(name="micro.transform_pipeline", wall_s=1.0,
                        events=int(eps), extra=extra)
    ])


class TestCompareReports:
    def test_within_threshold_passes(self):
        out = compare_reports(report(a=100_000), report(a=80_000),
                              threshold=0.25)
        assert out.ok
        assert out.comparisons[0].ratio == pytest.approx(0.8)

    def test_regression_beyond_threshold_fails(self):
        out = compare_reports(report(a=100_000), report(a=70_000),
                              threshold=0.25)
        assert not out.ok
        assert [c.name for c in out.regressions] == ["a"]
        assert "REGRESSED" in out.format()
        assert "FAILED" in out.format()

    def test_speedups_always_pass(self):
        out = compare_reports(report(a=100_000), report(a=300_000))
        assert out.ok
        assert out.comparisons[0].ratio == pytest.approx(3.0)

    def test_unmatched_benchmarks_never_gate(self):
        out = compare_reports(report(a=100_000, gone=50_000),
                              report(a=90_000, new=10))
        assert out.ok
        assert out.only_in_baseline == ["gone"]
        assert out.only_in_current == ["new"]
        assert "new benchmark" in out.format()

    def test_bad_threshold_rejected(self):
        with pytest.raises(ReproError, match="threshold"):
            compare_reports(report(a=1), report(a=1), threshold=1.5)


class TestHitRateGate:
    def test_hit_rate_drop_beyond_threshold_fails(self):
        # Throughput is fine (same eps) but the memo stopped hitting —
        # the shape of a broken cache key.
        out = compare_reports(cached_report(100_000, hit_rate=0.98),
                              cached_report(100_000, hit_rate=0.50))
        assert not out.ok
        assert [c.name for c in out.hit_rate_regressions] \
            == ["micro.transform_pipeline"]
        assert "HIT-RATE DROPPED" in out.format()
        assert "FAILED" in out.format()

    def test_hit_rate_within_tolerance_passes(self):
        out = compare_reports(cached_report(100_000, hit_rate=0.98),
                              cached_report(100_000, hit_rate=0.95))
        assert out.ok
        assert "cache 98% -> 95%" in out.format()

    def test_hit_rate_missing_on_either_side_never_gates(self):
        assert compare_reports(cached_report(100_000, hit_rate=0.98),
                               cached_report(100_000)).ok
        assert compare_reports(cached_report(100_000),
                               cached_report(100_000, hit_rate=0.2)).ok

    def test_custom_drop_threshold(self):
        base = cached_report(100_000, hit_rate=0.90)
        cur = cached_report(100_000, hit_rate=0.75)
        assert not compare_reports(base, cur, hit_rate_drop=0.10).ok
        assert compare_reports(base, cur, hit_rate_drop=0.20).ok

    def test_bad_drop_threshold_rejected(self):
        with pytest.raises(ReproError, match="hit_rate_drop"):
            compare_reports(report(a=1), report(a=1), hit_rate_drop=0)


class TestLoadReport:
    def test_loads_newest_trajectory_entry(self, tmp_path):
        path = tmp_path / "traj.json"
        entries = [report(a=1).to_dict(), report(a=2).to_dict()]
        entries[0]["label"] = "old"
        entries[1]["label"] = "new"
        path.write_text(json.dumps(entries))
        assert load_report(str(path)).label == "new"

    def test_loads_bare_report(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report(a=123).to_dict()))
        assert load_report(str(path)).result("a").events == 123

    def test_empty_trajectory_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ReproError, match="empty"):
            load_report(str(path))
