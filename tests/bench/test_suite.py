"""Smoke-run the real benchmark suite and the ``repro-bench`` CLI.

The smoke scale exists precisely so CI (and this test) can execute the
same code paths as a full perf run in a few seconds.
"""

import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import SCHEMA, run_suite
from repro.bench.macro import MACRO_BENCHMARKS
from repro.bench.micro import MICRO_BENCHMARKS


class TestSmokeSuite:
    def test_micro_suite_runs_at_smoke_scale(self):
        report = run_suite(MICRO_BENCHMARKS, "smoke")
        names = [b.name for b in report.benchmarks]
        assert "micro.event_loop" in names
        assert "micro.device_dispatch" in names
        assert "micro.transform_pipeline" in names
        for bench in report.benchmarks:
            assert bench.wall_s > 0
            assert bench.events > 0 or bench.extra

    def test_macro_suite_runs_at_smoke_scale(self):
        report = run_suite(MACRO_BENCHMARKS, "smoke")
        fig4 = report.result("macro.colocation_fig4")
        assert fig4.events > 0
        assert fig4.events_per_s > 0
        assert fig4.extra["simulated_s"] > 0
        cluster = report.result("macro.cluster_sweep")
        assert cluster.events > 0


class TestCli:
    def test_run_writes_trajectory_and_compare_gates(self, tmp_path,
                                                     capsys):
        out = str(tmp_path / "BENCH_simulator.json")
        assert main(["run", "--scale", "smoke", "--only", "micro",
                     "--append", "--out", out, "--label", "first"]) == 0
        captured = capsys.readouterr().out
        assert "repro-bench [smoke]" in captured
        assert "appended entry #1" in captured
        with open(out, encoding="utf-8") as fh:
            entries = json.load(fh)
        assert len(entries) == 1
        assert entries[0]["schema"] == SCHEMA
        assert entries[0]["label"] == "first"

        # The gate passes against itself...
        assert main(["compare", out, "--current", out]) == 0
        assert "perf gate OK" in capsys.readouterr().out
        # ...and fails against an inflated baseline.
        inflated = [dict(entries[0])]
        inflated[0] = json.loads(json.dumps(entries[0]))
        for bench in inflated[0]["benchmarks"]:
            bench["events"] = bench["events"] * 100 + 100
            bench["events_per_s"] = bench["events_per_s"] * 100 + 100
        baseline = str(tmp_path / "baseline.json")
        with open(baseline, "w", encoding="utf-8") as fh:
            json.dump(inflated, fh)
        assert main(["compare", baseline, "--current", out]) == 1
        assert "FAILED" in capsys.readouterr().out
