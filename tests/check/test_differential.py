"""Property-based differential validation of the simulator.

Each property draws a seed; the seed fully determines the workload, so
a failing example is a replayable bug report (the ``seed`` field of
the returned :class:`~repro.check.Divergence` says how).  Every run
here also executes with the invariant checker enabled, so these tests
double as a fuzz of the runtime checker against healthy simulations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import (
    analytic_divergences,
    conservation_divergences,
    determinism_divergences,
    lower_bound_divergences,
    run_mix,
    run_validation,
)
from repro.check.differential import POLICY_NAMES

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)
policies = st.sampled_from(POLICY_NAMES)


class TestAnalyticModel:
    """Device timing == closed-form model, for every launch shape."""

    @_settings
    @given(seed=seeds)
    def test_solo_kernels_match_analytic_durations(self, seed):
        assert analytic_divergences(seed) == []


class TestDeterminism:
    """Identical seeds produce bit-identical runs under every policy."""

    @_settings
    @given(seed=seeds, policy=policies)
    def test_repeated_runs_are_identical(self, seed, policy):
        assert determinism_divergences(policy, seed) == []


class TestPhysicalBounds:
    """Sharing only adds delay — nothing beats the idle-device bound."""

    @_settings
    @given(seed=seeds, policy=policies)
    def test_no_kernel_beats_lower_bound(self, seed, policy):
        assert lower_bound_divergences(policy, seed) == []


class TestConservation:
    """Every submitted kernel completes exactly once, in every policy."""

    @_settings
    @given(seed=seeds, policy=policies)
    def test_all_kernels_complete(self, seed, policy):
        assert conservation_divergences(policy, seed) == []


class TestAggregate:
    def test_run_validation_clean_on_fixed_seeds(self):
        report = run_validation(seeds=(0, 1))
        assert report.ok, report.format()
        assert report.invariant_checks > 0
        assert "validation OK" in report.format()

    def test_run_mix_audits_every_event(self):
        _records, device, engine = run_mix("Tally", seed=5)
        assert device.check.enabled
        # At least one audit per processed device event.
        assert device.check.checks_run >= engine.events_processed // 2
        assert device.check.violations == []
