"""Invariant checking through the colocation harness and CLI plumbing.

The acceptance bar for ``repro.check``: the full colocation harness —
Tally plus every baseline — runs with checks enabled and zero
violations, while a seeded accounting mutation surfaces as an
:class:`~repro.errors.InvariantViolation` through the same path.
"""

import pytest

from repro.check import InvariantChecker
from repro.cli import build_parser, main
from repro.errors import InvariantViolation
from repro.gpu import GPUDevice
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.harness.colocate import POLICY_NAMES

CONFIG = RunConfig(duration=2.0, warmup=0.5)
JOBS = [JobSpec.inference("bert_infer", load=0.4),
        JobSpec.training("resnet50_train")]


class TestHarnessChecked:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_policy_runs_clean_under_checks(self, policy):
        result = run_colocation(policy, JOBS, CONFIG, check=True)
        assert result.invariant_checks > 0
        assert result.jobs  # the run produced metrics, not just checks

    def test_unchecked_run_reports_zero_checks(self):
        result = run_colocation("MPS", JOBS, CONFIG)
        assert result.invariant_checks == 0

    def test_caller_supplied_checker_is_used(self):
        checker = InvariantChecker()
        result = run_colocation("Tally", JOBS, CONFIG, check=checker)
        assert result.invariant_checks == checker.checks_run > 0
        assert checker.violations == []

    def test_seeded_mutation_is_caught_through_harness(self, monkeypatch):
        original = GPUDevice._release
        calls = {"n": 0}

        def leaky(self, launch, count, threads):
            calls["n"] += 1
            if calls["n"] == 50:  # mid-run leak, not at the start
                return
            original(self, launch, count, threads)

        monkeypatch.setattr(GPUDevice, "_release", leaky)
        with pytest.raises(InvariantViolation):
            run_colocation("Tally", JOBS, CONFIG, check=True)

    def test_mutation_unnoticed_without_checks(self, monkeypatch):
        """The same leak sails through unchecked — why the checker exists."""
        original = GPUDevice._release
        calls = {"n": 0}

        def leaky(self, launch, count, threads):
            calls["n"] += 1
            if calls["n"] == 50:
                return
            original(self, launch, count, threads)

        monkeypatch.setattr(GPUDevice, "_release", leaky)
        result = run_colocation("Tally", JOBS, CONFIG)  # no exception
        assert result.jobs


class TestCliFlag:
    def test_check_flag_parses(self):
        parser = build_parser()
        assert parser.parse_args(["colocate", "--check"]).check is True
        assert parser.parse_args(["colocate"]).check is False
        assert parser.parse_args(["cluster", "--check"]).check is True

    def test_colocate_check_runs(self, capsys):
        assert main(["colocate", "--duration", "2", "--warmup", "0.5",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "invariant checks" in out
        assert "0 violations" in out
