"""Tests of the runtime invariant checker.

Two halves: healthy simulations of every launch shape pass with zero
violations, and seeded mutations of the device's accounting (a skipped
release, a dropped per-client decrement, a priority-inverting
dispatcher) are each caught — proving the checker detects the bug
class it exists for, not just that it stays quiet.
"""

import pytest

from repro.check import NULL_CHECKER, InvariantChecker
from repro.errors import InvariantViolation
from repro.gpu import (
    A100_SXM4_40GB,
    DeviceLaunch,
    EventLoop,
    GPUDevice,
    KernelDescriptor,
    LaunchConfig,
    LaunchKind,
    LaunchStatus,
)

SPEC = A100_SXM4_40GB


def checked_device():
    engine = EventLoop()
    checker = InvariantChecker()
    device = GPUDevice(SPEC, engine, check=checker)
    return device, engine, checker


def kernel(name="k", blocks=2000, bd=50e-6, tpb=256):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


class TestDisabledDefault:
    def test_device_defaults_to_null_checker(self):
        device = GPUDevice(SPEC, EventLoop())
        assert device.check is NULL_CHECKER
        assert not device.check.enabled

    def test_null_checker_shared_and_disabled(self):
        assert NULL_CHECKER.enabled is False


class TestHealthyRuns:
    def test_original_launch_passes(self):
        device, engine, checker = checked_device()
        device.submit(DeviceLaunch(kernel(), client_id="a"))
        engine.run()
        assert checker.checks_run > 0
        assert checker.violations == []
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots

    def test_ptb_launch_passes(self):
        device, engine, checker = checked_device()
        launch = DeviceLaunch(
            kernel(blocks=5000), LaunchConfig(LaunchKind.PTB, workers=200),
            client_id="a",
        )
        device.submit(launch)
        engine.run()
        assert launch.status is LaunchStatus.COMPLETED
        assert checker.violations == []

    def test_preempt_and_kill_pass(self):
        device, engine, checker = checked_device()
        victim = DeviceLaunch(
            kernel("victim", blocks=40_000),
            LaunchConfig(LaunchKind.PTB, workers=300), client_id="be",
        )
        device.submit(victim)
        engine.schedule(1e-3, lambda: device.preempt(victim))
        killed = DeviceLaunch(kernel("killed", blocks=40_000),
                              client_id="be2")
        device.submit(killed)
        engine.schedule(1.5e-3, lambda: device.kill(killed))
        engine.run()
        assert victim.done and killed.done
        assert checker.violations == []
        assert device.threads_free == SPEC.total_threads

    def test_colocated_priorities_pass(self):
        device, engine, checker = checked_device()
        device.submit(DeviceLaunch(kernel("be", blocks=30_000),
                                   client_id="be", priority=1))
        engine.schedule(
            0.5e-3,
            lambda: device.submit(DeviceLaunch(
                kernel("hp", blocks=500), client_id="hp", priority=0)),
        )
        engine.run()
        assert checker.violations == []


class TestMutationsCaught:
    """Seeded accounting bugs must raise InvariantViolation."""

    def test_skipped_release_is_caught(self, monkeypatch):
        original = GPUDevice._release
        calls = {"n": 0}

        def leaky(self, launch, count, threads):
            calls["n"] += 1
            if calls["n"] == 1:
                return  # leak the first batch's threads and slots
            original(self, launch, count, threads)

        monkeypatch.setattr(GPUDevice, "_release", leaky)
        device, engine, _checker = checked_device()
        device.submit(DeviceLaunch(kernel(), client_id="a"))
        with pytest.raises(InvariantViolation):
            engine.run()

    def test_dropped_client_decrement_is_caught(self, monkeypatch):
        original = GPUDevice._release

        def skewed(self, launch, count, threads):
            original(self, launch, count, threads)
            # Undo the per-client bookkeeping only.
            self._client_inflight[launch.client_id] += count

        monkeypatch.setattr(GPUDevice, "_release", skewed)
        device, engine, _checker = checked_device()
        device.submit(DeviceLaunch(kernel(), client_id="a"))
        with pytest.raises(InvariantViolation):
            engine.run()

    def test_broken_block_conservation_is_caught(self, monkeypatch):
        # Corrupt both ORIGINAL completion paths (plain waves and solo
        # wave chains) so the phantom block lands whichever one runs.
        orig_finish = GPUDevice._finish_batch
        orig_chain = GPUDevice._wave_chain_done

        def phantom(device, launch):
            if not launch.done:
                launch.blocks_done += 1  # phantom block
                device.check.verify(device)

        def finish(self, launch, count, threads):
            orig_finish(self, launch, count, threads)
            phantom(self, launch)

        def chain_done(self, batch):
            launch = batch.launch
            orig_chain(self, batch)
            phantom(self, launch)

        monkeypatch.setattr(GPUDevice, "_finish_batch", finish)
        monkeypatch.setattr(GPUDevice, "_wave_chain_done", chain_done)
        device, engine, _checker = checked_device()
        device.submit(DeviceLaunch(kernel(blocks=3000), client_id="a"))
        with pytest.raises(InvariantViolation):
            engine.run()

    def test_priority_inversion_is_caught(self, monkeypatch):
        def greedy(self):
            # Dispatch lowest priority first — the opposite of the
            # strict-priority rule the checker enforces.
            for launch in sorted(self._resident,
                                 key=lambda l: -l.priority):
                if (launch.blocks_to_start > 0
                        and not launch.preempt_requested
                        and self._slots_free > 0):
                    tpb = launch.descriptor.threads_per_block
                    fit = min(self._threads_free // tpb, self._slots_free,
                              launch.blocks_to_start)
                    if fit > 0:
                        self._start_batch(launch, fit)

        monkeypatch.setattr(GPUDevice, "_dispatch", greedy)
        device, engine, _checker = checked_device()
        # Two waves of best-effort work, then a high-priority arrival:
        # when the first wave drains, the greedy dispatcher hands the
        # freed slots to the best-effort remainder instead of the
        # waiting high-priority launch.
        capacity = SPEC.concurrent_blocks(256)
        device.submit(DeviceLaunch(kernel("be", blocks=2 * capacity),
                                   client_id="be", priority=1))
        engine.schedule(
            10e-6,
            lambda: device.submit(DeviceLaunch(
                kernel("hp", blocks=200), client_id="hp", priority=0)),
        )
        with pytest.raises(InvariantViolation):
            engine.run()


class TestCollectMode:
    def test_collect_mode_records_without_raising(self, monkeypatch):
        original = GPUDevice._release
        calls = {"n": 0}

        def leaky(self, launch, count, threads):
            calls["n"] += 1
            if calls["n"] == 1:
                return
            original(self, launch, count, threads)

        monkeypatch.setattr(GPUDevice, "_release", leaky)
        engine = EventLoop()
        checker = InvariantChecker(raise_on_violation=False)
        device = GPUDevice(SPEC, engine, check=checker)
        device.submit(DeviceLaunch(kernel(), client_id="a"))
        engine.run()
        assert checker.violations
        assert any("leak" in v or "conservation" in v
                   for v in checker.violations)
