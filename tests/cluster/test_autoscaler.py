"""Load-signal autoscaler: hysteresis, warm-up, drain-back, determinism."""

import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterCase,
    ClusterJob,
    run_cluster_sweep,
    run_controlplane,
)
from repro.errors import HarnessError
from repro.harness import RunConfig
from repro.trace import Tracer, summarize

CFG = RunConfig(duration=3.0, warmup=0.5)

#: reacts within a tick or two and drains back quickly — test-sized
FAST = AutoscalerConfig(interval=0.1, queue_high=1, queue_low=0,
                        up_ticks=1, down_ticks=3, cooldown=0.0,
                        warmup_min=0.05, warmup_max=0.1)


def hp_fleet(n, **kwargs):
    return [ClusterJob("bert_infer", load=0.3, traffic_seed=i, **kwargs)
            for i in range(n)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(HarnessError):
            AutoscalerConfig(interval=0.0)
        with pytest.raises(HarnessError):
            AutoscalerConfig(queue_low=5, queue_high=2)
        with pytest.raises(HarnessError):
            AutoscalerConfig(p99_low=2.0, p99_high=1.0)
        with pytest.raises(HarnessError):
            AutoscalerConfig(warmup_min=0.5, warmup_max=0.1)
        with pytest.raises(HarnessError):
            AutoscalerConfig(up_ticks=0)
        with pytest.raises(HarnessError):
            AutoscalerConfig(min_active=0)

    def test_parse(self):
        config = AutoscalerConfig.parse(
            "interval=0.5,queue_high=4,min_active=2")
        assert config.interval == 0.5
        assert config.queue_high == 4
        assert config.min_active == 2
        assert AutoscalerConfig.parse("") == AutoscalerConfig()

    def test_parse_rejects_unknown_and_bad_values(self):
        with pytest.raises(HarnessError, match="known keys"):
            AutoscalerConfig.parse("warp_factor=9")
        with pytest.raises(HarnessError, match="bad --autoscale value"):
            AutoscalerConfig.parse("queue_high=many")

    def test_standby_needs_autoscale_and_valid_count(self):
        with pytest.raises(HarnessError, match="autoscale"):
            run_controlplane(jobs=hp_fleet(2), devices=2, config=CFG,
                             standby=1)
        with pytest.raises(HarnessError, match="at least one"):
            run_controlplane(jobs=hp_fleet(2), devices=2, config=CFG,
                             autoscale=FAST, standby=2)


class TestScaleUp:
    def test_queue_pressure_activates_standby_capacity(self):
        # 4 HP services into 1 active device (HP exclusivity: one per
        # GPU) — without spares 3 wait in queue forever.  The
        # autoscaler must bring up standby devices and admit them all.
        result = run_controlplane(
            jobs=hp_fleet(4), devices=4, config=CFG, arrival_rate=50.0,
            autoscale=FAST, standby=3, check=True)
        recovery = result.recovery
        assert recovery.scale_ups == 3
        assert recovery.jobs_shed == 0
        assert len(result.services) == 4  # every HP service went live

    def test_without_autoscaler_the_queue_stays_stuck(self):
        result = run_controlplane(
            jobs=hp_fleet(4), devices=1, config=CFG, arrival_rate=50.0,
            check=True)
        assert result.recovery.scale_ups == 0
        assert len(result.services) == 1

    def test_hysteresis_requires_consecutive_breach_ticks(self):
        # up_ticks greater than the total tick count: never scales.
        patient = AutoscalerConfig(interval=0.1, queue_high=1,
                                   up_ticks=1000)
        result = run_controlplane(
            jobs=hp_fleet(4), devices=4, config=CFG, arrival_rate=50.0,
            autoscale=patient, standby=3, check=True)
        assert result.recovery.scale_ups == 0
        assert len(result.services) == 1

    def test_decisions_are_traced(self):
        tracer = Tracer(capacity=None)
        run_controlplane(
            jobs=hp_fleet(4), devices=4, config=CFG, arrival_rate=50.0,
            autoscale=FAST, standby=3, check=True, tracer=tracer)
        decisions = summarize(tracer).scale_decisions
        assert decisions.get("scale_up") == 3


class TestScaleDown:
    def test_departures_drain_elastic_capacity_back(self):
        # All services leave at t=1; calm ticks then drain the elastic
        # shards back to standby (the base device never drains).
        jobs = hp_fleet(4, depart_at=1.0)
        tracer = Tracer(capacity=None)
        result = run_controlplane(
            jobs=jobs, devices=4, config=CFG, arrival_rate=50.0,
            autoscale=FAST, standby=3, check=True, tracer=tracer)
        recovery = result.recovery
        assert recovery.scale_ups == 3
        assert recovery.scale_downs == 3
        decisions = summarize(tracer).scale_decisions
        assert decisions.get("scale_down") == 3

    def test_min_active_floors_the_drain(self):
        jobs = hp_fleet(4, depart_at=1.0)
        keep = AutoscalerConfig(interval=0.1, queue_high=1, queue_low=0,
                                up_ticks=1, down_ticks=3, cooldown=0.0,
                                warmup_min=0.05, warmup_max=0.1,
                                min_active=3)
        result = run_controlplane(
            jobs=jobs, devices=4, config=CFG, arrival_rate=50.0,
            autoscale=keep, standby=3, check=True)
        # 1 base + 3 elastic active; only down to min_active=3 sheds
        assert result.recovery.scale_downs == 1


class TestDeterminism:
    def case(self):
        return ClusterCase(
            jobs=tuple(hp_fleet(4, depart_at=1.5)), devices=4,
            config=CFG, arrival_rate=50.0, autoscale=FAST, standby=3,
            check=True)

    def test_repeat_runs_bit_identical(self):
        first, second = run_cluster_sweep([self.case(), self.case()])
        assert repr(first.recovery) == repr(second.recovery)
        assert first.events == second.events

    def test_parallel_sweep_matches_serial(self):
        cases = [self.case(), self.case()]
        serial = run_cluster_sweep(cases, jobs=1)
        parallel = run_cluster_sweep(cases, jobs=2)
        assert [repr(r.recovery) for r in serial] == \
            [repr(r.recovery) for r in parallel]
        assert [r.events for r in serial] == \
            [r.events for r in parallel]
