"""Cluster chaos matrix: device fault kinds x sharing policies.

Every cell runs the online control plane on a packed placement with the
invariant checker and the migration-conservation audit enabled —
surviving the run is the core assertion (the conservation check raises
InvariantViolation if any admitted request is lost or double-executed
during failover).  Each cell also asserts the explicit accounting:
every latency-critical service either reports throughput or is counted
evicted, and device-fault counters match the seeded schedule.
"""

import pytest

from repro.cluster import ClusterJob, packed_placement, run_controlplane
from repro.faults import FaultConfig
from repro.harness import RunConfig

CFG = RunConfig(duration=2.5, warmup=0.5)

POLICIES = ("Tally", "MPS", "Time-Slicing")

DEVICE_FAULTS = {
    "crash": FaultConfig(seed=11, device_crash_rate=0.8),
    "degrade": FaultConfig(seed=11, device_degraded_rate=1.5,
                           degraded_factor=3.0, degraded_duration=0.3),
    "flap": FaultConfig(seed=11, device_flap_rate=1.0, flap_count=4,
                        flap_period=0.1),
    "everything": FaultConfig(seed=11, device_crash_rate=0.5,
                              device_degraded_rate=1.0,
                              device_flap_rate=0.5),
}


def fleet():
    return [
        ClusterJob("bert_infer", load=0.25, traffic_seed=0),
        ClusterJob("resnet50_infer", load=0.2, traffic_seed=1),
        ClusterJob("pointnet_train", traffic_seed=2),
        ClusterJob("resnet50_train", traffic_seed=3),
    ]


def run_cell(policy: str, faults: FaultConfig):
    placement = packed_placement(fleet(), compute_budget=1.5)
    return run_controlplane(placement=placement,
                            devices=placement.gpus_used + 1,
                            policy=policy, config=CFG, faults=faults,
                            check=True)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("kind", sorted(DEVICE_FAULTS))
def test_cluster_fault_matrix_conserves_requests(policy, kind):
    result = run_cell(policy, DEVICE_FAULTS[kind])
    # check=True ran the conservation audit over every service ledger
    # plus the per-device accounting checker — reaching here means no
    # request was lost or double-executed through the fault window.
    assert result.invariant_checks > 0
    recovery = result.recovery
    assert recovery is not None
    # Every latency-critical tenant is accounted for: it either shows
    # an SLA outcome or is explicitly marked evicted.
    assert len(recovery.services) == 2
    for service in recovery.services:
        assert service.evicted or service.slo_attainment >= 0.0
    # Faults actually fired in every cell of this matrix.
    assert sum(recovery.device_faults.values()) > 0


@pytest.mark.parametrize("kind", sorted(DEVICE_FAULTS))
def test_cluster_chaos_replays_bit_identically(kind):
    first = run_cell("Tally", DEVICE_FAULTS[kind])
    second = run_cell("Tally", DEVICE_FAULTS[kind])
    assert repr(first.recovery) == repr(second.recovery)
    assert repr(first.services) == repr(second.services)
    assert first.events == second.events


def test_degraded_device_rides_through_without_migration():
    faults = FaultConfig(seed=11, device_degraded_rate=1.5,
                         degraded_factor=3.0, degraded_duration=0.3)
    result = run_cell("Tally", faults)
    recovery = result.recovery
    assert recovery.device_faults.get("device_degrade", 0) > 0
    assert recovery.device_faults.get("device_crash", 0) == 0
    # plain (non-flapping) degrade windows never trigger migration
    assert recovery.migrations == 0
    assert recovery.jobs_evicted == 0


def test_speed_factor_faults_do_not_leak_into_fault_free_runs():
    """Guard: a fault-free control-plane run is bit-identical to the
    pre-fault-machinery baseline (the speed-factor multiply is gated)."""
    placement = packed_placement(fleet(), compute_budget=1.5)
    a = run_controlplane(placement=placement, config=CFG)
    b = run_controlplane(placement=placement, config=CFG)
    assert repr(a.services) == repr(b.services)
    assert a.events == b.events
    assert a.recovery.migrations == 0
