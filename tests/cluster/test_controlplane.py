"""Tests for the online cluster control plane."""

import pytest

from repro.check import InvariantViolation, ServiceLedger, \
    check_request_conservation
from repro.cluster import (
    ClusterCase,
    ClusterJob,
    packed_placement,
    run_cluster_sweep,
    run_controlplane,
    schedule_arrivals,
)
from repro.errors import HarnessError
from repro.faults import FaultConfig
from repro.harness import RunConfig

CFG = RunConfig(duration=3.0, warmup=0.5)


def fleet():
    return [
        ClusterJob("bert_infer", load=0.3, traffic_seed=0),
        ClusterJob("resnet50_infer", load=0.2, traffic_seed=1),
        ClusterJob("pointnet_train", traffic_seed=2),
        ClusterJob("resnet50_train", traffic_seed=3),
    ]


class TestConservationCheck:
    def test_balanced_ledger_passes(self):
        audited = check_request_conservation([
            ServiceLedger("a#0", arrivals=10, completed=7, pending=2,
                          shed=1),
        ])
        assert audited == 1

    def test_lost_request_detected(self):
        with pytest.raises(InvariantViolation, match="1 request\\(s\\) lost"):
            check_request_conservation([
                ServiceLedger("a#0", arrivals=10, completed=7, pending=1,
                              shed=1),
            ])

    def test_double_execution_detected(self):
        with pytest.raises(InvariantViolation, match="double-counted"):
            check_request_conservation([
                ServiceLedger("a#0", arrivals=10, completed=11, pending=0,
                              shed=0),
            ])

    def test_all_imbalances_reported_together(self):
        with pytest.raises(InvariantViolation) as err:
            check_request_conservation([
                ServiceLedger("a#0", arrivals=5, completed=4, pending=0,
                              shed=0),
                ServiceLedger("b#0", arrivals=5, completed=5, pending=0,
                              shed=0),
                ServiceLedger("c#0", arrivals=5, completed=-1, pending=0,
                              shed=0),
            ])
        assert "a#0" in str(err.value)
        assert "c#0" in str(err.value)
        assert "b#0" not in str(err.value)


class TestArrivals:
    def test_seeded_and_monotonic(self):
        times = schedule_arrivals(20, 4.0, seed=3)
        assert times == schedule_arrivals(20, 4.0, seed=3)
        assert times != schedule_arrivals(20, 4.0, seed=4)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_bad_rate_rejected(self):
        with pytest.raises(HarnessError):
            schedule_arrivals(3, 0.0)


class TestControlPlaneBasics:
    def test_needs_placement_or_jobs(self):
        with pytest.raises(HarnessError):
            run_controlplane(jobs=fleet())

    def test_fail_device_validated(self):
        with pytest.raises(HarnessError, match="outside"):
            run_controlplane(jobs=fleet(), devices=2, config=CFG,
                             fail_device=((7, 1.0),))
        with pytest.raises(HarnessError, match="outside the run"):
            run_controlplane(jobs=fleet(), devices=2, config=CFG,
                             fail_device=((0, 99.0),))

    def test_fault_free_run_matches_static_expectations(self):
        placement = packed_placement(fleet(), compute_budget=1.5)
        result = run_controlplane(placement=placement, config=CFG,
                                  check=True)
        assert result.gpus_used == placement.gpus_used
        assert result.sla_violations == 0
        assert len(result.services) == 2
        assert result.recovery is not None
        assert result.recovery.migrations == 0
        assert result.recovery.requests_shed == 0
        assert result.invariant_checks > 0

    def test_online_admission_places_every_job_when_room(self):
        result = run_controlplane(jobs=fleet(), devices=4, config=CFG,
                                  arrival_rate=8.0, check=True)
        assert result.recovery.jobs_shed == 0
        assert result.recovery.jobs_evicted == 0
        assert result.total_normalized_throughput > 0

    def test_backpressure_sheds_beyond_queue_limit(self):
        # 8 latency-critical services into one device: one admitted
        # (HP exclusivity), a bounded queue, the rest shed.
        jobs = [ClusterJob("bert_infer", load=0.3, traffic_seed=i)
                for i in range(8)]
        result = run_controlplane(jobs=jobs, devices=1, config=CFG,
                                  arrival_rate=50.0, admission_limit=3,
                                  check=True)
        assert result.recovery.jobs_shed == 4  # 8 - 1 admitted - 3 queued


class TestFailover:
    def placement(self):
        return packed_placement(fleet(), compute_budget=1.5)

    def test_crash_migrates_hp_tenant_to_spare(self):
        placement = self.placement()
        # Crash every packed device once, at t=1; spares absorb them.
        result = run_controlplane(
            placement=placement, devices=placement.gpus_used + 2,
            config=CFG, fail_device=((0, 1.0),), check=True)
        recovery = result.recovery
        assert recovery.migrations >= 1
        assert recovery.mttr > 0
        migrated = [s for s in recovery.services if s.migrations > 0]
        crashed_hp = [j for j in placement.bins[0] if j.latency_critical]
        assert len(migrated) == len(crashed_hp)
        for service in migrated:
            assert service.downtime > 0
            assert not service.evicted
            # the post-recovery attainment is reported for migrated HPs
            assert service.post_recovery_attainment == \
                service.post_recovery_attainment  # not NaN
        assert recovery.requests_shed == 0  # nothing lost in migration

    def test_no_capacity_evicts_and_counts_shed_requests(self):
        jobs = [ClusterJob("bert_infer", load=0.3, traffic_seed=0)]
        result = run_controlplane(jobs=jobs, devices=1, config=CFG,
                                  fail_device=((0, 1.0),), check=True)
        recovery = result.recovery
        assert recovery.jobs_evicted == 1
        service = recovery.service("bert_infer#0")
        assert service.evicted
        # its queued/in-flight work at the crash is explicitly shed
        assert recovery.requests_shed >= 0
        assert result.services[0].p99_ratio > 0

    def test_repack_displaces_best_effort_for_hp(self):
        # Device 1 is full of best-effort work; when device 0 dies, the
        # HP tenant must displace it rather than be evicted.
        jobs = [ClusterJob("bert_infer", load=0.5, traffic_seed=0),
                ClusterJob("resnet50_train", traffic_seed=1),
                ClusterJob("pointnet_train", traffic_seed=2)]
        from repro.cluster import Placement
        placement = Placement(bins=[[jobs[0]], [jobs[1], jobs[2]]])
        result = run_controlplane(placement=placement, config=CFG,
                                  fail_device=((0, 1.0),), check=True,
                                  compute_budget=1.25)
        recovery = result.recovery
        hp = recovery.service("bert_infer#0")
        assert not hp.evicted
        assert hp.migrations == 1

    def test_graceful_departure_frees_capacity(self):
        jobs = [ClusterJob("bert_infer", load=0.3, traffic_seed=0,
                           depart_at=1.0),
                ClusterJob("resnet50_infer", load=0.3, traffic_seed=1)]
        # One device, HP exclusivity: the second service can only be
        # admitted from the queue after the first departs.
        result = run_controlplane(jobs=jobs, devices=1, config=CFG,
                                  arrival_rate=100.0, check=True)
        assert result.recovery.jobs_shed == 0
        assert result.recovery.jobs_evicted == 0
        assert len(result.services) == 2


class TestDeterminism:
    def case(self, **overrides):
        placement = packed_placement(fleet(), compute_budget=1.5)
        kwargs = dict(placement=placement,
                      devices=placement.gpus_used + 1, config=CFG,
                      fail_device=((0, 1.0),), check=True)
        kwargs.update(overrides)
        return run_controlplane(**kwargs)

    def test_fixed_seed_failover_is_bit_identical(self):
        first, second = self.case(), self.case()
        # repr-compare: NaN fields (post-recovery attainment of tenants
        # that never migrated) are reproduced but compare != by IEEE.
        assert repr(first.services) == repr(second.services)
        assert repr(first.recovery) == repr(second.recovery)
        assert first.total_normalized_throughput == \
            second.total_normalized_throughput
        assert first.events == second.events
        assert first.invariant_checks == second.invariant_checks

    def test_device_fault_schedule_independent_per_device(self):
        from repro.faults import FaultInjector

        cfg = FaultConfig(seed=5, device_crash_rate=0.4,
                          device_degraded_rate=0.6, device_flap_rate=0.4)
        schedule = FaultInjector(cfg).device_fault_schedule(1, 4.0)
        # enabling an unrelated fault kind must not shift the schedule
        cfg2 = FaultConfig(seed=5, device_crash_rate=0.4,
                           device_degraded_rate=0.6, device_flap_rate=0.4,
                           slot_fault_rate=3.0)
        assert FaultInjector(cfg2).device_fault_schedule(1, 4.0) == schedule

    def test_parallel_sweep_matches_serial(self):
        faults = FaultConfig(seed=2, device_crash_rate=0.25,
                             device_degraded_rate=0.4)
        cases = [ClusterCase(jobs=tuple(fleet()), devices=3, policy=p,
                             config=CFG, faults=faults, arrival_rate=4.0,
                             check=True)
                 for p in ("Tally", "Time-Slicing")]
        serial = run_cluster_sweep(cases, jobs=1)
        parallel = run_cluster_sweep(cases, jobs=2)
        assert [repr(r.recovery) for r in serial] == \
            [repr(r.recovery) for r in parallel]
        assert [r.events for r in serial] == [r.events for r in parallel]
        assert [r.total_normalized_throughput for r in serial] == \
            [r.total_normalized_throughput for r in parallel]
