"""Bit-identity of the time-warp parallel engine against the serial core.

The serial control plane is the oracle: for every scenario the
parallel engine must commit *exactly* the same result — metrics,
ledgers, audits, event counts — under both backends (inline, which
speculates maximally and therefore exercises rollback paths hardest,
and the process backend, which adds pickling and pipe ordering).

Comparison is by ``repr``: ClusterResult carries NaN fields (mttr on
fault-free runs, post-recovery attainment) that defeat dataclass
equality, and ``repr`` renders NaN identically on both sides.
"""

import pytest

from repro.cluster.controlplane import AutoscalerConfig, ClusterController
from repro.cluster.placement import ClusterJob
from repro.faults import FaultConfig
from repro.harness import RunConfig
from repro.trace import Tracer

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

_CONFIG = RunConfig(duration=1.2, warmup=0.3)


def _jobs():
    return [
        ClusterJob("bert_infer", load=0.3, traffic_seed=0),
        ClusterJob("resnet50_infer", load=0.2, traffic_seed=1),
        ClusterJob("pointnet_train", traffic_seed=2),
        ClusterJob("resnet50_train", traffic_seed=3),
    ]


def _run(*, tracer=None, **kw):
    controller = ClusterController(
        _jobs(), kw.pop("devices", 3), config=_CONFIG, check=True,
        tracer=tracer, **kw)
    return controller.run()


def _chaos(seed: int) -> FaultConfig:
    return FaultConfig(seed=seed, device_crash_rate=0.5,
                       device_degraded_rate=0.6, device_flap_rate=0.4,
                       slot_fault_rate=0.3)


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_chaos_matrix_bit_identity(seed):
    """Crash + degrade + flap + slot faults, Poisson arrivals, audited."""
    kw = dict(faults=_chaos(seed), arrival_rate=4.0)
    serial = _run(**kw)
    parallel = _run(engine="parallel", **kw)
    assert repr(serial) == repr(parallel)
    assert serial.events == parallel.events
    assert serial.invariant_checks == parallel.invariant_checks


@pytest.mark.parametrize("policy", ["MPS-Priority", "TGS"])
def test_policy_variants_bit_identity(policy):
    kw = dict(policy=policy, faults=_chaos(7), arrival_rate=4.0)
    serial = _run(**kw)
    parallel = _run(engine="parallel", **kw)
    assert repr(serial) == repr(parallel)


def test_autoscaler_and_migration_bit_identity():
    """Device failure + drain + autoscaler standby: the full migration
    path (checkpoint/export/import/restore) crosses shards."""
    kw = dict(devices=4, fail_device=((0, 0.6),), drain=((1, 0.9),),
              autoscale=AutoscalerConfig(), standby=1, arrival_rate=6.0)
    serial = _run(**kw)
    parallel = _run(engine="parallel", **kw)
    assert repr(serial) == repr(parallel)
    assert serial.recovery is not None


def test_trace_summary_counts_match():
    """Committed trace streams agree up to same-timestamp permutation:
    per-type counts are exactly equal."""
    from collections import Counter

    def counts(tracer):
        return Counter(type(e).__name__ for e in tracer.events)

    kw = dict(faults=_chaos(11), arrival_rate=4.0)
    st = Tracer()
    pt = Tracer()
    _run(tracer=st, **kw)
    _run(tracer=pt, engine="parallel", **kw)
    assert counts(st) == counts(pt)
    assert len(st.events) == len(pt.events)


def test_process_backend_bit_identity():
    """Two worker processes: adds pickling, pipe ordering, and true
    cross-process rollback to the same oracle comparison."""
    kw = dict(devices=4, faults=_chaos(42), arrival_rate=5.0,
              fail_device=((0, 0.6),))
    serial = _run(**kw)
    parallel = _run(engine="parallel", workers=2, **kw)
    assert repr(serial) == repr(parallel)


def test_engine_parameter_is_validated():
    with pytest.raises(Exception):
        ClusterController(_jobs(), 3, config=_CONFIG, engine="warp9")
