"""Tests for cluster placement policies."""

import pytest

from repro.cluster import (
    ClusterJob,
    Placement,
    dedicated_placement,
    packed_placement,
)
from repro.errors import HarnessError
from repro.workloads.memory import footprint_of


def services(n, load=0.1):
    return [ClusterJob("resnet50_infer", load=load, traffic_seed=i)
            for i in range(n)]


class TestClusterJob:
    def test_role_derivation(self):
        assert ClusterJob("bert_infer").role == "inference"
        assert ClusterJob("bert_train").role == "training"

    def test_inference_demand_is_load(self):
        assert ClusterJob("bert_infer", load=0.3).demand() == 0.3

    def test_training_demand_is_busy_fraction(self):
        demand = ClusterJob("resnet50_train").demand()
        assert 0.5 < demand < 0.8  # 35 % host gap

    def test_memory_uses_footprint_model(self):
        job = ClusterJob("gpt2_train")
        assert job.memory() == footprint_of("gpt2_train").total


class TestDedicated:
    def test_one_gpu_per_job(self):
        jobs = services(4) + [ClusterJob("gpt2_train")]
        placement = dedicated_placement(jobs)
        assert placement.gpus_used == 5
        assert all(len(gpu) == 1 for gpu in placement.bins)

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            dedicated_placement([])


class TestPacked:
    def test_offline_services_consolidate_hard(self):
        """Batch inference (best-effort) packs many-per-GPU — Fig. 6a."""
        online = [ClusterJob("resnet50_infer", load=0.1, traffic_seed=0)]
        offline = [ClusterJob("resnet50_infer", load=0.1, offline=True,
                              traffic_seed=i + 1) for i in range(9)]
        placement = packed_placement(online + offline)
        assert placement.gpus_used <= 2

    def test_at_most_one_online_service_per_gpu(self):
        placement = packed_placement(services(6, load=0.1))
        for gpu in placement.bins:
            assert sum(1 for j in gpu if j.latency_critical) <= 1
        # Online services cannot share with each other under Tally's
        # one-high-priority-task model.
        assert placement.gpus_used == 6

    def test_training_fills_service_gpus(self):
        jobs = [ClusterJob("bert_infer", load=0.2),
                ClusterJob("pointnet_train"),
                ClusterJob("resnet50_train")]
        placement = packed_placement(jobs, compute_budget=2.0)
        assert placement.gpus_used < 3

    def test_compute_budget_limits_packing(self):
        jobs = [ClusterJob("gpt2_train"), ClusterJob("bert_train")]
        tight = packed_placement(jobs, compute_budget=1.0)
        loose = packed_placement(jobs, compute_budget=2.5)
        assert tight.gpus_used >= loose.gpus_used

    def test_memory_limits_packing(self):
        # Two ~20 GiB training jobs cannot share a 40 GiB card with a
        # service on it too.
        jobs = [ClusterJob("gpt2_train"), ClusterJob("llama2_infer",
                                                     load=0.1)]
        placement = packed_placement(jobs, compute_budget=10.0)
        total = sum(j.memory() for gpu in placement.bins for j in gpu)
        for gpu in placement.bins:
            assert sum(j.memory() for j in gpu) <= 40 * 1024 ** 3

    def test_invalid_budget(self):
        with pytest.raises(HarnessError):
            packed_placement(services(2), compute_budget=0.0)


class TestPlacementValidation:
    def test_two_high_priority_rejected(self):
        placement = Placement(bins=[[ClusterJob("bert_infer"),
                                     ClusterJob("resnet50_infer")]])
        with pytest.raises(HarnessError, match="high-priority"):
            placement.validate()

    def test_memory_overcommit_rejected(self):
        placement = Placement(bins=[[ClusterJob("whisper_train"),
                                     ClusterJob("whisper_train"),
                                     ClusterJob("llama2_infer",
                                                offline=True)]])
        with pytest.raises(HarnessError, match="memory"):
            placement.validate()

    def test_empty_gpu_rejected(self):
        with pytest.raises(HarnessError, match="no jobs"):
            Placement(bins=[[]]).validate()

    def test_overcommit_error_names_footprints_and_capacity(self):
        """The error must say which jobs overflow and what would fit."""
        placement = Placement(bins=[[ClusterJob("whisper_train"),
                                     ClusterJob("whisper_train"),
                                     ClusterJob("llama2_infer",
                                                offline=True)]])
        with pytest.raises(HarnessError) as err:
            placement.validate()
        message = str(err.value)
        assert "40.00 GiB device" in message
        assert "whisper_train=" in message
        assert "llama2_infer=" in message
