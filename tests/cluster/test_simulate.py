"""Tests for cluster-consolidation evaluation."""

import pytest

from repro.cluster import (
    ClusterJob,
    Placement,
    dedicated_placement,
    evaluate_placement,
    packed_placement,
)
from repro.errors import HarnessError
from repro.harness import RunConfig

CFG = RunConfig(duration=3.0, warmup=0.5)


@pytest.fixture(scope="module")
def small_fleet():
    return [
        ClusterJob("resnet50_infer", load=0.15, traffic_seed=0),
        ClusterJob("bert_infer", load=0.15, traffic_seed=1),
        ClusterJob("pointnet_train"),
        ClusterJob("resnet50_train"),
    ]


class TestEvaluatePlacement:
    def test_dedicated_meets_sla_trivially(self, small_fleet):
        result = evaluate_placement(dedicated_placement(small_fleet),
                                    "Tally", CFG)
        assert result.gpus_used == 4
        assert result.sla_violations == 0
        assert len(result.services) == 2

    def test_packed_uses_fewer_gpus(self, small_fleet):
        packed = packed_placement(small_fleet, compute_budget=1.5)
        assert packed.gpus_used < len(small_fleet)
        result = evaluate_placement(packed, "Tally", CFG)
        assert result.gpus_used == packed.gpus_used
        assert result.sla_violations == 0, (
            f"worst p99 {result.worst_p99_ratio:.2f}x"
        )

    def test_throughput_accounts_all_jobs(self, small_fleet):
        result = evaluate_placement(dedicated_placement(small_fleet),
                                    "Tally", CFG)
        # Each isolated job runs at ~1.0 normalized throughput.
        assert result.total_normalized_throughput == pytest.approx(
            len(small_fleet), abs=0.8)

    def test_offline_services_not_counted_as_sla(self):
        jobs = [ClusterJob("resnet50_infer", load=0.1, traffic_seed=0),
                ClusterJob("resnet50_infer", load=0.1, offline=True,
                           traffic_seed=1)]
        placement = packed_placement(jobs)
        result = evaluate_placement(placement, "Tally", CFG)
        assert len(result.services) == 1  # only the online service

    def test_duplicate_models_mapped_correctly(self):
        jobs = [ClusterJob("resnet50_infer", load=0.1, traffic_seed=0),
                ClusterJob("resnet50_infer", load=0.1, offline=True,
                           traffic_seed=1),
                ClusterJob("resnet50_infer", load=0.1, offline=True,
                           traffic_seed=2)]
        placement = Placement(bins=[list(jobs)])
        result = evaluate_placement(placement, "Tally", CFG)
        assert result.gpus_used == 1
        assert len(result.services) == 1

    def test_empty_placement_rejected(self):
        with pytest.raises(HarnessError):
            evaluate_placement(Placement(bins=[]), "Tally", CFG)

    def test_mps_packing_violates_sla_where_tally_does_not(self):
        """The cluster-level version of the paper's thesis."""
        jobs = [ClusterJob("bert_infer", load=0.3, sla_factor=1.25,
                           traffic_seed=0),
                ClusterJob("gpt2_train")]
        placement = packed_placement(jobs, compute_budget=2.0)
        assert placement.gpus_used == 1
        tally = evaluate_placement(placement, "Tally", CFG)
        mps = evaluate_placement(placement, "MPS", CFG)
        assert tally.sla_violations == 0
        assert mps.sla_violations >= 1


class TestTailP99:
    def test_zero_completion_service_reports_inf_not_error(self):
        """A service killed before completing anything is an SLA
        violation (p99_ratio = inf), not a harness crash."""
        from repro.cluster.simulate import _tail_p99
        from repro.faults import FaultConfig
        from repro.harness import JobSpec, run_colocation

        spec = JobSpec.inference("bert_infer", load=0.2, crash_at=0.2)
        result = run_colocation("Tally", [spec], CFG,
                                faults=FaultConfig(seed=0))
        job = result.job("bert_infer#0")
        assert job.latency is None  # crashed before the window opened
        assert _tail_p99(job) == float("inf")

    def test_inf_ratio_is_an_unconditional_sla_violation(self):
        from repro.cluster import ServiceOutcome

        outcome = ServiceOutcome(model="bert_infer", gpu=0,
                                 p99_ratio=float("inf"), sla_factor=1.25)
        assert not outcome.meets_sla
