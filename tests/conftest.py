"""Shared test configuration: named Hypothesis profiles.

``HYPOTHESIS_PROFILE=ci`` (used by the CI validation job) derandomizes
every property test — examples are derived from the test body alone,
so a failure on one machine replays identically on any other.  The
``dev`` profile keeps random exploration but prints the reproduction
blob on failure.  Without the variable, Hypothesis defaults apply.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)

_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)
