"""Tests for candidate launch-configuration generation."""

import pytest

from repro.core import TallyConfig
from repro.core.candidates import (
    ORIGINAL_CONFIG,
    SchedConfig,
    SchedKind,
    generate_candidates,
)
from repro.errors import SchedulerError
from repro.gpu import A100_SXM4_40GB, KernelDescriptor

SPEC = A100_SXM4_40GB
CONFIG = TallyConfig()


def desc(blocks=5000, tpb=256, bd=50e-6):
    return KernelDescriptor("k", num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


class TestSchedConfig:
    def test_sliced_requires_blocks(self):
        with pytest.raises(SchedulerError):
            SchedConfig(SchedKind.SLICED)

    def test_ptb_requires_workers(self):
        with pytest.raises(SchedulerError):
            SchedConfig(SchedKind.PTB)

    def test_describe(self):
        assert SchedConfig(SchedKind.SLICED, blocks_per_slice=10).describe() \
            == "sliced(10)"
        assert SchedConfig(SchedKind.PTB, workers=108).describe() == "ptb(108)"
        assert ORIGINAL_CONFIG.describe() == "original"

    def test_hashable_for_cache_keys(self):
        a = SchedConfig(SchedKind.PTB, workers=108)
        b = SchedConfig(SchedKind.PTB, workers=108)
        assert hash(a) == hash(b) and a == b


class TestGenerateCandidates:
    def test_ptb_workers_are_sm_multiples(self):
        candidates = generate_candidates(desc(), SPEC, CONFIG)
        workers = [c.workers for c in candidates if c.kind is SchedKind.PTB]
        assert workers, "expected PTB candidates"
        for w in workers:
            assert w % SPEC.num_sms == 0

    def test_ptb_workers_capped_by_occupancy(self):
        k = desc(tpb=1024)  # capacity 216 = 2 * num_sms
        candidates = generate_candidates(k, SPEC, CONFIG)
        workers = [c.workers for c in candidates if c.kind is SchedKind.PTB]
        assert all(w <= k.capacity(SPEC) for w in workers)

    def test_slice_sizes_follow_fractions(self):
        k = desc(blocks=1000)
        candidates = generate_candidates(k, SPEC, CONFIG)
        sizes = [c.blocks_per_slice for c in candidates
                 if c.kind is SchedKind.SLICED]
        expected = [max(1, int(1000 * f)) for f in CONFIG.slice_fractions]
        assert sizes == [s for s in expected if s < 1000]

    def test_tiny_kernel_gets_original_only(self):
        k = desc(blocks=1)
        candidates = generate_candidates(k, SPEC, CONFIG)
        assert candidates == [ORIGINAL_CONFIG]

    def test_no_duplicates(self):
        k = desc(blocks=40)  # small fractions collapse to 1-2 blocks
        candidates = generate_candidates(k, SPEC, CONFIG)
        assert len(candidates) == len(set(candidates))

    def test_ptb_never_exceeds_work(self):
        k = desc(blocks=150)  # fewer blocks than one SM multiple round
        candidates = generate_candidates(k, SPEC, CONFIG)
        for c in candidates:
            if c.kind is SchedKind.PTB:
                assert c.workers < k.num_blocks


class TestTallyConfigValidation:
    def test_bound_must_be_positive(self):
        with pytest.raises(SchedulerError):
            TallyConfig(turnaround_latency_bound=0.0)

    def test_fractions_validated(self):
        with pytest.raises(SchedulerError):
            TallyConfig(slice_fractions=(0.0,))
        with pytest.raises(SchedulerError):
            TallyConfig(slice_fractions=(1.5,))

    def test_multiples_validated(self):
        with pytest.raises(SchedulerError):
            TallyConfig(worker_sm_multiples=(0,))

    def test_with_bound(self):
        cfg = TallyConfig().with_bound(1e-3)
        assert cfg.turnaround_latency_bound == 1e-3
