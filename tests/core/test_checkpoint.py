"""Tests for server-side checkpoint/restore live migration."""

import numpy as np
import pytest

from repro.baselines import Priority
from repro.core import (
    ExecMode,
    ExecPlan,
    TallyServer,
    connect_runtime,
    migrate_client,
)
from repro.errors import MigrationError, VirtError
from repro.ptx.library import vector_add
from repro.runtime import FatBinary, MemoryManager, MemorySnapshot
from repro.runtime.api import CudaRuntime
from repro.virt.interposer import InterposedBackend
from repro.virt.protocol import Envelope, MallocRequest, checksum_of
from repro.workloads import KVCache, get_llm_model


def runtime_for(channel, client_id):
    return CudaRuntime(InterposedBackend(channel, client_id))


class TestMemorySnapshot:
    def test_roundtrip_preserves_names_and_counters(self):
        manager = MemoryManager()
        ref = manager.malloc(4)
        manager.memory.array(ref)[:] = [1.0, 2.0, 3.0, 4.0]
        freed = manager.malloc(2)
        manager.free(freed)
        snap = manager.snapshot()
        assert isinstance(snap, MemorySnapshot)
        clone = MemoryManager.from_snapshot(snap)
        np.testing.assert_array_equal(
            clone.memory.array(ref), [1.0, 2.0, 3.0, 4.0])
        assert clone.live_bytes() == manager.live_bytes()
        # The allocator index carries over, so restored clients cannot
        # collide new buffers with names their old refs still point to.
        new_ref = clone.malloc(1)
        assert new_ref.buffer != ref.buffer

    def test_snapshot_is_a_deep_copy(self):
        manager = MemoryManager()
        ref = manager.malloc(2)
        manager.memory.array(ref)[:] = [7.0, 7.0]
        snap = manager.snapshot()
        manager.memory.array(ref)[:] = [0.0, 0.0]
        clone = MemoryManager.from_snapshot(snap)
        np.testing.assert_array_equal(clone.memory.array(ref), [7.0, 7.0])


class TestCheckpoint:
    def test_unknown_client_rejected(self):
        with pytest.raises(MigrationError):
            TallyServer().checkpoint("ghost")

    def test_checkpoint_carries_memory_and_code(self):
        server = TallyServer()
        rt = connect_runtime(server, "tenant", Priority.HIGH)
        rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        ref = rt.malloc(3)
        rt.memcpy_h2d(ref, np.array([1.0, 2.0, 3.0]))
        ckpt = server.checkpoint("tenant")
        assert ckpt.client_id == "tenant"
        assert ckpt.priority is Priority.HIGH
        assert [b.name for b in ckpt.binaries] == ["bin"]
        assert ckpt.live_elements == 3

    def test_restore_rejects_duplicate_id(self):
        source, target = TallyServer(), TallyServer()
        source.connect("tenant")
        target.connect("tenant")
        with pytest.raises(MigrationError):
            target.restore(source.checkpoint("tenant"))


class TestMigrateClient:
    def test_memory_image_survives_migration(self):
        source, target = TallyServer(), TallyServer()
        rt = connect_runtime(source, "tenant", Priority.HIGH)
        ref = rt.malloc(4)
        rt.memcpy_h2d(ref, np.array([4.0, 3.0, 2.0, 1.0]))
        channel = migrate_client(source, target, "tenant")
        moved = runtime_for(channel, "tenant")
        # The same GlobalRef the client held before migration resolves
        # to the same bytes on the target server.
        np.testing.assert_array_equal(
            moved.memcpy_d2h(ref, 4), [4.0, 3.0, 2.0, 1.0])

    def test_source_forgets_the_client(self):
        source, target = TallyServer(), TallyServer()
        connect_runtime(source, "tenant")
        migrate_client(source, target, "tenant")
        with pytest.raises(VirtError):
            source.client("tenant")
        assert source.clients_collected == 1
        assert target.clients_restored == 1

    def test_registered_kernels_run_on_target(self):
        source = TallyServer(best_effort_plan=ExecPlan(ExecMode.PTB))
        target = TallyServer(best_effort_plan=ExecPlan(ExecMode.PTB))
        rt = connect_runtime(source, "tenant")
        rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        x, y, out = rt.malloc(4), rt.malloc(4), rt.malloc(4)
        rt.memcpy_h2d(x, np.array([1.0, 2.0, 3.0, 4.0]))
        rt.memcpy_h2d(y, np.array([10.0, 10.0, 10.0, 10.0]))
        channel = migrate_client(source, target, "tenant")
        moved = runtime_for(channel, "tenant")
        moved.launch_kernel("vector_add", (1,), (4,),
                            {"x": x, "y": y, "out": out, "n": 4})
        np.testing.assert_array_equal(
            moved.memcpy_d2h(out, 4), [11.0, 12.0, 13.0, 14.0])

    def test_retried_request_replays_instead_of_reexecuting(self):
        """Idempotency across migration: the reply cache travels."""
        source, target = TallyServer(), TallyServer()
        source.connect("tenant")
        request = MallocRequest("tenant", 8)
        envelope = Envelope(request_id=1, client_id="tenant",
                            payload=request, checksum=checksum_of(request))
        first = source.handle(envelope)
        assert first.ok
        migrate_client(source, target, "tenant")
        live_before = target.client("tenant").memory_manager.live_bytes()
        retried = target.handle(envelope)  # client retries after failover
        assert retried.ok
        assert retried.value == first.value
        assert target.replay_hits == 1
        live_after = target.client("tenant").memory_manager.live_bytes()
        assert live_after == live_before  # no second allocation

    def test_kv_cache_occupancy_is_captured(self):
        """LLM KV blocks are MemoryManager allocations — they migrate."""
        source, target = TallyServer(), TallyServer()
        source.connect("llm", Priority.HIGH)
        model = get_llm_model("llama7b_serve")
        kv = KVCache(model, source.client("llm").memory_manager)
        kv.admit(0, 300)
        kv.admit(1, 120)
        used = kv.used_tokens
        assert used > 0
        ckpt = source.checkpoint("llm")
        assert ckpt.live_elements == used
        migrate_client(source, target, "llm")
        restored = target.client("llm").memory_manager
        assert restored.live_bytes() == used
        # The restored pool keeps functioning: release on a KVCache
        # rebuilt over the migrated manager frees real allocations.
        moved_kv = KVCache(model, restored)
        moved_kv._blocks = kv._blocks  # the driver's block map moves too
        moved_kv.release_all()
        assert restored.live_bytes() == 0
