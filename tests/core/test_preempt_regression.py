"""Regression tests for the preemption overcount bug.

A burst of high-priority kernels used to re-preempt (and re-count, and
re-trace) the same in-flight best-effort launch once per arrival.  The
fix guards on ``launch.preempt_requested`` (PTB) and a per-episode
``hold_noted`` flag (sliced), so each launch is preempted exactly once
per episode no matter how many high-priority kernels pile up while it
drains.
"""

import pytest

from repro.baselines.base import Priority
from repro.core import Tally, TallyConfig
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor
from repro.trace import Tracer
from repro.trace.events import PreemptAck, PreemptRequest

BE_KERNEL = KernelDescriptor("be_big", num_blocks=50_000,
                             threads_per_block=256, block_duration=100e-6)
HP_KERNEL = KernelDescriptor("hp_small", num_blocks=100,
                             threads_per_block=256, block_duration=50e-6)


def traced_tally(config: TallyConfig):
    engine = EventLoop()
    tracer = Tracer(capacity=None)
    device = GPUDevice(A100_SXM4_40GB, engine, tracer=tracer)
    tally = Tally(device, engine, config=config)
    tally.register_client("be", Priority.BEST_EFFORT)
    tally.register_client("hp", Priority.HIGH)
    return tally, engine, tracer


def hp_burst(tally, engine, count: int, start: float = 2e-3,
             gap: float = 10e-6) -> None:
    """Schedule ``count`` independent high-priority arrivals.

    The gap is far shorter than the drain time of an in-flight PTB
    wave (~105us at 100us/block), so later arrivals land while the
    launch preempted by the first one is still draining — exactly the
    window where the overcount happened.
    """
    for i in range(count):
        engine.schedule_at(start + i * gap,
                           lambda: tally.submit("hp", HP_KERNEL,
                                                lambda: None))


class TestPtbOvercount:
    """PTB launches: one preemption per launch, not per HP arrival."""

    @pytest.mark.parametrize("burst", [1, 4, 8])
    def test_burst_preempts_once(self, burst):
        config = TallyConfig(slice_fractions=(), worker_sm_multiples=(1,))
        tally, engine, _tracer = traced_tally(config)
        tally.submit("be", BE_KERNEL, lambda: None)
        hp_burst(tally, engine, burst)
        engine.run()
        assert tally.stats.hp_kernels == burst
        assert tally.stats.preemptions == 1
        assert tally.stats.resumes == 1

    @pytest.mark.parametrize("burst", [1, 4, 8])
    def test_stats_match_trace_acks(self, burst):
        """Acceptance criterion: TallyStats.preemptions == PreemptAck
        trace events in a traced HP-burst run."""
        config = TallyConfig(slice_fractions=(), worker_sm_multiples=(1,))
        tally, engine, tracer = traced_tally(config)
        tally.submit("be", BE_KERNEL, lambda: None)
        hp_burst(tally, engine, burst)
        engine.run()
        acks = [e for e in tracer.events if isinstance(e, PreemptAck)]
        requests = [e for e in tracer.events
                    if isinstance(e, PreemptRequest)]
        assert tally.stats.preemptions == len(acks) == 1
        assert len(requests) == 1


class TestSlicedOvercount:
    """Sliced launches: one slice-boundary hold event per episode."""

    @pytest.mark.parametrize("burst", [1, 4, 8])
    def test_burst_emits_one_boundary_event(self, burst):
        config = TallyConfig(slice_fractions=(0.05,),
                             worker_sm_multiples=())
        tally, engine, tracer = traced_tally(config)
        tally.submit("be", BE_KERNEL, lambda: None)
        hp_burst(tally, engine, burst)
        engine.run()
        boundary = [e for e in tracer.events
                    if isinstance(e, PreemptRequest)
                    and e.mechanism == "slice-boundary"]
        assert len(boundary) == 1
        # Sliced holds are not device preemptions: the in-flight slice
        # completes normally and the device never acks anything.
        assert tally.stats.preemptions == 0
        assert not any(isinstance(e, PreemptAck) for e in tracer.events)

    def test_two_episodes_emit_two_boundary_events(self):
        """hold_noted resets per slice: a second, later HP episode
        announces its own hold."""
        config = TallyConfig(slice_fractions=(0.05,),
                             worker_sm_multiples=())
        tally, engine, tracer = traced_tally(config)
        tally.submit("be", BE_KERNEL, lambda: None)
        hp_burst(tally, engine, 3, start=2e-3)
        hp_burst(tally, engine, 3, start=4e-3)  # well after episode 1
        engine.run()
        boundary = [e for e in tracer.events
                    if isinstance(e, PreemptRequest)
                    and e.mechanism == "slice-boundary"]
        assert len(boundary) == 2


class TestResumeOrdering:
    """Synchronous HP resubmission in on_done must defer the resume."""

    def test_chained_hp_kernels_resume_once(self):
        config = TallyConfig(slice_fractions=(), worker_sm_multiples=(1,))
        tally, engine, _tracer = traced_tally(config)
        tally.submit("be", BE_KERNEL, lambda: None)

        remaining = {"n": 3}

        def on_done():
            remaining["n"] -= 1
            if remaining["n"] > 0:
                # Resubmit synchronously from the completion callback —
                # the scheduler must see hp_outstanding > 0 and NOT
                # resume best-effort work between chain links.
                tally.submit("hp", HP_KERNEL, on_done)

        engine.schedule_at(2e-3,
                           lambda: tally.submit("hp", HP_KERNEL, on_done))
        engine.run()
        assert remaining["n"] == 0
        assert tally.stats.hp_kernels == 3
        assert tally.stats.preemptions == 1
        assert tally.stats.resumes == 1
