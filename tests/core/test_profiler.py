"""Tests for the transparent profiler."""

import pytest

from repro.core import TallyConfig
from repro.core.candidates import SchedKind
from repro.core.profiler import Measurement, TransparentProfiler
from repro.errors import SchedulerError
from repro.gpu import A100_SXM4_40GB, KernelDescriptor

SPEC = A100_SXM4_40GB


def desc(name="k", blocks=5000, bd=50e-6):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=256,
                            block_duration=bd)


def make_profiler(**config_kw):
    config = TallyConfig(prewarm_profiles=False, **config_kw)
    return TransparentProfiler(SPEC, config)


class TestMeasurement:
    def test_ewma_update_moves_toward_sample(self):
        m = Measurement(turnaround=100e-6, duration=1e-3)
        m.update(turnaround=200e-6, duration=2e-3)
        assert 100e-6 < m.turnaround < 200e-6
        assert m.samples == 2


class TestProfilingPhase:
    def test_profiles_each_candidate_once(self):
        profiler = make_profiler()
        k = desc()
        candidates = profiler.candidates(k)
        seen = []
        for _ in candidates:
            config, profiling = profiler.choose(k)
            assert profiling
            seen.append(config)
            profiler.record(k, config, turnaround=1e-3, duration=1e-2)
        assert seen == candidates
        _config, profiling = profiler.choose(k)
        assert not profiling

    def test_profiling_order_is_cheapest_footprint_first(self):
        profiler = make_profiler()
        k = desc()
        first, _ = profiler.choose(k)
        assert first.kind is SchedKind.PTB
        assert first.workers == SPEC.num_sms


class TestSelection:
    def _measured(self, profiler, k, entries):
        for config, (turnaround, duration) in entries.items():
            profiler.record(k, config, turnaround, duration)

    def test_picks_fastest_feasible(self):
        profiler = make_profiler(turnaround_latency_bound=100e-6)
        k = desc()
        candidates = profiler.candidates(k)
        # Mark everything measured: two feasible options with different
        # durations, rest infeasible.
        for i, c in enumerate(candidates):
            if i == 0:
                profiler.record(k, c, turnaround=50e-6, duration=5e-3)
            elif i == 1:
                profiler.record(k, c, turnaround=80e-6, duration=2e-3)
            else:
                profiler.record(k, c, turnaround=1e-3, duration=1e-3)
        chosen, profiling = profiler.choose(k)
        assert not profiling
        assert chosen == candidates[1]  # feasible with min duration

    def test_falls_back_to_min_turnaround(self):
        profiler = make_profiler(turnaround_latency_bound=1e-9)
        k = desc()
        candidates = profiler.candidates(k)
        for i, c in enumerate(candidates):
            profiler.record(k, c, turnaround=(i + 1) * 1e-3, duration=1e-3)
        chosen, _ = profiler.choose(k)
        assert chosen == candidates[0]

    def test_best_known_matches_choose(self):
        profiler = make_profiler()
        k = desc()
        for c in profiler.candidates(k):
            profiler.record(k, c, turnaround=1e-5, duration=1e-3)
        chosen, _ = profiler.choose(k)
        assert profiler.best_known(k) == chosen

    def test_negative_measurement_rejected(self):
        profiler = make_profiler()
        k = desc()
        config = profiler.candidates(k)[0]
        with pytest.raises(SchedulerError):
            profiler.record(k, config, turnaround=-1.0, duration=1.0)


class TestPrewarm:
    def test_prewarm_fills_all_candidates(self):
        config = TallyConfig(prewarm_profiles=True)
        profiler = TransparentProfiler(SPEC, config)
        k = desc()
        _chosen, profiling = profiler.choose(k)
        assert not profiling  # analytic estimates made profiling moot
        for c in profiler.candidates(k):
            assert profiler.lookup(k, c) is not None

    def test_prewarm_estimates_track_cost_model(self):
        config = TallyConfig(prewarm_profiles=True)
        profiler = TransparentProfiler(SPEC, config)
        k = desc()
        profiler.prewarm(k)
        for c in profiler.candidates(k):
            m = profiler.lookup(k, c)
            if c.kind is SchedKind.PTB:
                assert m.turnaround == pytest.approx(
                    k.ptb_iteration_duration())
            elif c.kind is SchedKind.SLICED:
                assert m.turnaround == pytest.approx(
                    k.slice_duration(SPEC, c.blocks_per_slice))

    def test_runtime_measurements_refine_prewarm(self):
        config = TallyConfig(prewarm_profiles=True)
        profiler = TransparentProfiler(SPEC, config)
        k = desc()
        profiler.prewarm(k)
        c = profiler.candidates(k)[0]
        before = profiler.lookup(k, c).turnaround
        profiler.record(k, c, turnaround=before * 10, duration=1e-3)
        assert profiler.lookup(k, c).turnaround > before


class TestDescriptorKeying:
    """Regression: profiles are keyed on the full descriptor.

    The cache used to key on ``descriptor.name`` alone, so two kernels
    sharing a name with different launch geometry (blocks, threads,
    shared memory) inherited each other's candidate sets and
    measurements.
    """

    def test_same_name_different_geometry_not_aliased(self):
        profiler = make_profiler()
        big = desc("conv2d", blocks=5000)
        small = desc("conv2d", blocks=64)
        for c in profiler.candidates(big):
            profiler.record(big, c, turnaround=1e-3, duration=1e-2)
        _config, profiling = profiler.choose(big)
        assert not profiling  # big is fully measured
        # small shares only the name; it must profile from scratch with
        # its own (different) candidate set, not inherit big's.
        assert profiler.candidates(small) != profiler.candidates(big)
        _config, profiling = profiler.choose(small)
        assert profiling

    def test_measurements_do_not_leak_across_geometries(self):
        profiler = make_profiler()
        slow = desc("k", blocks=5000, bd=50e-6)
        fast = desc("k", blocks=5000, bd=5e-6)  # same candidate shapes
        c = profiler.candidates(slow)[0]
        profiler.record(slow, c, turnaround=1e-3, duration=1e-2)
        assert profiler.lookup(fast, c) is None

    def test_prewarm_covers_each_geometry_separately(self):
        config = TallyConfig(prewarm_profiles=True)
        profiler = TransparentProfiler(SPEC, config)
        a = desc("k", blocks=5000)
        b = desc("k", blocks=64)
        profiler.prewarm(a)
        profiler.prewarm(b)
        for k in (a, b):
            for c in profiler.candidates(k):
                assert profiler.lookup(k, c) is not None
