"""Tests for Tally's priority-aware scheduler over the timing simulator."""

import pytest

from repro.baselines import Priority
from repro.core import Tally, TallyConfig
from repro.core.candidates import SchedKind
from repro.errors import SchedulerError
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor

SPEC = A100_SXM4_40GB


def make_tally(**config_kw):
    engine = EventLoop()
    device = GPUDevice(SPEC, engine)
    tally = Tally(device, engine, TallyConfig(**config_kw))
    return tally, device, engine


def kernel(name="k", blocks=5000, bd=50e-6, tpb=256):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


class TestPriorityEnforcement:
    def test_high_priority_dispatches_immediately(self):
        tally, device, engine = make_tally()
        tally.register_client("hp", Priority.HIGH)
        done = []
        tally.submit("hp", kernel(blocks=100), lambda: done.append(engine.now))
        engine.run()
        assert done and done[0] < 1e-3
        assert tally.stats.hp_kernels == 1

    def test_best_effort_waits_for_high_priority(self):
        tally, device, engine = make_tally()
        tally.register_client("hp", Priority.HIGH)
        tally.register_client("be", Priority.BEST_EFFORT)
        order = []
        # Long HP kernel, then a BE kernel arrives mid-way.
        tally.submit("hp", kernel("hp_k", blocks=864 * 4, bd=1e-3),
                     lambda: order.append(("hp", engine.now)))
        engine.schedule(0.5e-3, lambda: tally.submit(
            "be", kernel("be_k", blocks=100, bd=50e-6),
            lambda: order.append(("be", engine.now))))
        engine.run()
        assert order[0][0] == "hp"

    def test_hp_arrival_preempts_ptb_execution(self):
        tally, device, engine = make_tally(
            slice_fractions=(), worker_sm_multiples=(1,))
        tally.register_client("hp", Priority.HIGH)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = {}
        tally.submit("be", kernel("be_k", blocks=50_000, bd=100e-6),
                     lambda: done.setdefault("be", engine.now))
        engine.schedule(2e-3, lambda: tally.submit(
            "hp", kernel("hp_k", blocks=100, bd=50e-6),
            lambda: done.setdefault("hp", engine.now)))
        engine.run()
        assert tally.stats.preemptions >= 1
        assert tally.stats.resumes >= 1
        assert done["hp"] < done["be"]
        # HP kernel completed promptly: launch overhead + execution +
        # at most one PTB iteration of queueing.
        hp_latency = done["hp"] - 2e-3
        assert hp_latency < 1e-3

    def test_best_effort_completes_after_resume(self):
        tally, device, engine = make_tally()
        tally.register_client("hp", Priority.HIGH)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = {}
        tally.submit("be", kernel("be_k", blocks=20_000, bd=50e-6),
                     lambda: done.setdefault("be", engine.now))
        for i in range(5):
            engine.schedule(1e-3 * (i + 1), lambda: tally.submit(
                "hp", kernel("hp_k", blocks=50, bd=20e-6),
                lambda: None))
        engine.run()
        assert "be" in done  # preempted repeatedly but finished


class TestSchedulingModes:
    def test_no_transformations_launches_whole_kernels(self):
        tally, device, engine = make_tally(use_transformations=False)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = []
        tally.submit("be", kernel(blocks=2000), lambda: done.append(1))
        engine.run()
        assert done
        assert tally.stats.slices_launched == 0
        assert tally.stats.ptb_launches == 0

    def test_sliced_execution_counts_slices(self):
        tally, device, engine = make_tally(
            worker_sm_multiples=(), slice_fractions=(0.1,),
            prewarm_profiles=True)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = []
        tally.submit("be", kernel(blocks=1000), lambda: done.append(1))
        engine.run()
        assert done
        assert tally.stats.slices_launched == 10

    def test_stream_order_enforced(self):
        tally, device, engine = make_tally()
        tally.register_client("be", Priority.BEST_EFFORT)
        tally.submit("be", kernel(), lambda: None)
        with pytest.raises(SchedulerError, match="stream-ordered"):
            tally.submit("be", kernel(), lambda: None)

    def test_unknown_client_rejected(self):
        tally, device, engine = make_tally()
        with pytest.raises(SchedulerError):
            tally.submit("ghost", kernel(), lambda: None)

    def test_duplicate_registration_rejected(self):
        tally, device, engine = make_tally()
        tally.register_client("a")
        with pytest.raises(SchedulerError):
            tally.register_client("a")


class TestProfileGuidedSelection:
    def test_profiler_converges_to_bounded_config(self):
        """After profiling, the chosen config's turnaround estimate
        meets the bound whenever any candidate can."""
        tally, device, engine = make_tally(prewarm_profiles=True)
        tally.register_client("be", Priority.BEST_EFFORT)
        k = kernel(blocks=10_000, bd=20e-6)

        pending = [k] * 3

        def submit_next():
            if pending:
                tally.submit("be", pending.pop(), submit_next)

        submit_next()
        engine.run()
        chosen = tally.profiler.best_known(k)
        measurement = tally.profiler.lookup(k, chosen)
        assert measurement is not None
        assert measurement.turnaround <= tally.config.turnaround_latency_bound

    def test_runtime_measurements_recorded(self):
        tally, device, engine = make_tally(prewarm_profiles=True)
        tally.register_client("be", Priority.BEST_EFFORT)
        k = kernel(blocks=2000, bd=30e-6)
        tally.submit("be", k, lambda: None)
        engine.run()
        chosen = tally.profiler.best_known(k)
        m = tally.profiler.lookup(k, chosen)
        assert m is not None and m.samples >= 2  # prewarm + runtime


class TestMultipleBestEffortClients:
    def test_concurrent_best_effort_executions(self):
        tally, device, engine = make_tally()
        tally.register_client("be1", Priority.BEST_EFFORT)
        tally.register_client("be2", Priority.BEST_EFFORT)
        done = {}
        tally.submit("be1", kernel("k1", blocks=3000),
                     lambda: done.setdefault("be1", engine.now))
        tally.submit("be2", kernel("k2", blocks=3000),
                     lambda: done.setdefault("be2", engine.now))
        engine.run()
        assert set(done) == {"be1", "be2"}

    def test_all_best_effort_preempted_on_hp_arrival(self):
        tally, device, engine = make_tally(
            slice_fractions=(), worker_sm_multiples=(1,))
        tally.register_client("hp", Priority.HIGH)
        for i in range(3):
            tally.register_client(f"be{i}", Priority.BEST_EFFORT)
        for i in range(3):
            tally.submit(f"be{i}", kernel(f"k{i}", blocks=50_000, bd=100e-6),
                         lambda: None)
        engine.schedule(2e-3, lambda: tally.submit(
            "hp", kernel("hp_k", blocks=100, bd=20e-6), lambda: None))
        engine.run_until(3e-3)
        assert tally.stats.preemptions == 3
