"""Property-based tests of Tally's scheduler invariants.

Whatever mix of high-priority and best-effort kernels arrives, three
invariants must hold:

* **conservation** — every submitted kernel eventually completes (once
  the high-priority source goes quiet);
* **priority** — a high-priority kernel's completion latency is bounded
  by its own execution time plus one turnaround of whatever best-effort
  work was resident (never by whole best-effort kernels);
* **progress** — best-effort work is not starved once high-priority
  work ends.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import Priority
from repro.core import Tally, TallyConfig
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor

SPEC = A100_SXM4_40GB

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workload_mix(draw):
    hp_kernels = draw(st.lists(
        st.tuples(
            st.integers(min_value=10, max_value=800),    # blocks
            st.floats(min_value=1e-5, max_value=2e-4),   # block duration
            st.floats(min_value=0.0, max_value=4e-3),    # arrival
        ),
        min_size=0, max_size=12,
    ))
    be_kernels = draw(st.lists(
        st.tuples(
            st.integers(min_value=100, max_value=30_000),
            st.floats(min_value=1e-5, max_value=5e-4),
        ),
        min_size=1, max_size=6,
    ))
    return hp_kernels, be_kernels


def _run_mix(hp_kernels, be_kernels):
    engine = EventLoop()
    device = GPUDevice(SPEC, engine)
    tally = Tally(device, engine, TallyConfig())
    tally.register_client("hp", Priority.HIGH)
    tally.register_client("be", Priority.BEST_EFFORT)

    hp_done: list[tuple[float, float]] = []  # (arrival, completion)
    be_done: list[float] = []

    for i, (blocks, bd, arrival) in enumerate(hp_kernels):
        kernel = KernelDescriptor(f"hp{i}", blocks, 256, bd)
        engine.schedule_at(arrival, lambda k=kernel, a=arrival: tally.submit(
            "hp", k, lambda a=a: hp_done.append((a, engine.now))))

    queue = [KernelDescriptor(f"be{i}", blocks, 512, bd)
             for i, (blocks, bd) in enumerate(be_kernels)]

    def submit_next():
        if queue:
            kernel = queue.pop(0)
            tally.submit("be", kernel, lambda: (be_done.append(engine.now),
                                                submit_next()))

    submit_next()
    engine.run(max_events=3_000_000)
    return tally, hp_done, be_done


class TestSchedulerInvariants:
    @given(workload_mix())
    @_settings
    def test_conservation(self, mix):
        hp_kernels, be_kernels = mix
        tally, hp_done, be_done = _run_mix(hp_kernels, be_kernels)
        assert len(hp_done) == len(hp_kernels)
        assert len(be_done) == len(be_kernels)
        assert tally.stats.hp_kernels == len(hp_kernels)
        assert tally.stats.be_kernels == len(be_kernels)

    @given(workload_mix())
    @_settings
    def test_high_priority_latency_bounded(self, mix):
        hp_kernels, be_kernels = mix
        _tally, hp_done, _be_done = _run_mix(hp_kernels, be_kernels)
        # Conservative bound: own execution + launch overhead + the
        # worst best-effort block duration (one turnaround) + queueing
        # behind earlier HP kernels.
        worst_be_block = max(bd for _b, bd in be_kernels)
        total_hp_exec = sum(
            KernelDescriptor(f"t{i}", blocks, 256, bd).duration(SPEC)
            for i, (blocks, bd, _a) in enumerate(hp_kernels)
        )
        for arrival, completion in hp_done:
            latency = completion - arrival
            bound = (total_hp_exec  # all HP work could be queued ahead
                     + 10 * SPEC.kernel_launch_overhead
                     + 4 * worst_be_block * 1.2
                     + 1e-4)
            assert latency <= bound, (latency, bound)

    @given(workload_mix())
    @_settings
    def test_device_drained_cleanly(self, mix):
        hp_kernels, be_kernels = mix
        tally, _hp, _be = _run_mix(hp_kernels, be_kernels)
        assert tally.device.threads_free == SPEC.total_threads
        assert tally.device.slots_free == SPEC.total_block_slots
        assert not tally.device.resident_launches
