"""Tests for the functional Tally server."""

import numpy as np
import pytest

from repro.baselines import Priority
from repro.core import ExecMode, ExecPlan, TallyServer, connect_runtime
from repro.errors import VirtError
from repro.ptx.library import block_sum, case_names, make_case, vector_add
from repro.runtime import FatBinary
from repro.virt.protocol import MallocRequest


class TestConnections:
    def test_duplicate_client_rejected(self):
        server = TallyServer()
        server.connect("a")
        with pytest.raises(VirtError):
            server.connect("a")

    def test_high_priority_clients_run_original(self):
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.PTB))
        server.connect("hp", Priority.HIGH)
        assert server.client("hp").plan.mode is ExecMode.ORIGINAL

    def test_best_effort_clients_get_server_plan(self):
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.SLICED))
        server.connect("be", Priority.BEST_EFFORT)
        assert server.client("be").plan.mode is ExecMode.SLICED

    def test_unknown_client_lookup(self):
        with pytest.raises(VirtError):
            TallyServer().client("ghost")

    def test_requests_for_unknown_client_fail_gracefully(self):
        server = TallyServer()
        response = server.handle(MallocRequest("ghost", 4))
        assert not response.ok
        assert "ghost" in response.error


class TestIsolationBetweenClients:
    def test_clients_have_separate_address_spaces(self):
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.ORIGINAL))
        rt_a = connect_runtime(server, "a")
        rt_b = connect_runtime(server, "b")
        ref_a = rt_a.malloc(4)
        rt_a.memcpy_h2d(ref_a, np.full(4, 5.0))
        # Client b allocates a buffer that happens to share the handle
        # name sequence — it must see its own zeroed memory.
        ref_b = rt_b.malloc(4)
        np.testing.assert_array_equal(rt_b.memcpy_d2h(ref_b, 4), np.zeros(4))

    def test_clients_register_code_independently(self):
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.ORIGINAL))
        rt_a = connect_runtime(server, "a")
        rt_b = connect_runtime(server, "b")
        rt_a.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        # b never registered the kernel, so its launch fails.
        with pytest.raises(VirtError):
            rt_b.launch_kernel("vector_add", (1,), (1,),
                               {"x": rt_b.malloc(1), "y": rt_b.malloc(1),
                                "out": rt_b.malloc(1), "n": 1})


class TestTransformedExecutionCorrectness:
    """End-to-end: the full corpus through the whole virtualized stack."""

    @pytest.mark.parametrize("mode", [ExecMode.SLICED, ExecMode.PTB])
    @pytest.mark.parametrize("name", case_names())
    def test_corpus_through_server(self, mode, name):
        case = make_case(name, np.random.default_rng(99))
        server = TallyServer(best_effort_plan=ExecPlan(
            mode, blocks_per_slice=3, workers=3))
        state = server.connect_state = server.connect(name)  # channel
        # Execute directly through the server's transformer with the
        # case's own memory image.
        client = server.client(name)
        client.interpreter.memory = case.memory
        server.transformer.execute(
            client.interpreter, case.kernel, case.grid, case.block,
            case.args, client.plan,
        )
        case.check()

    def test_ptb_frees_control_buffers(self):
        case = make_case("vector_add", np.random.default_rng(7))
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.PTB))
        channel = server.connect("c")
        client = server.client("c")
        client.interpreter.memory = case.memory
        buffers_before = len(case.memory._buffers)
        server.transformer.execute(
            client.interpreter, case.kernel, case.grid, case.block,
            case.args, client.plan,
        )
        assert len(case.memory._buffers) == buffers_before
        case.check()
