"""TallyServer protocol error paths.

The server is a daemon shared by many clients: a bad request from one
client must come back as an error :class:`Response` — never as an
exception that could take the server (and everyone's GPU) down.
"""

import numpy as np

from repro.core import TallyServer
from repro.ptx.interpreter import GlobalRef
from repro.ptx.ir import Dim3
from repro.virt import (
    FreeRequest,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
)
from repro.virt.protocol import Envelope, checksum_of


def connected_server() -> TallyServer:
    server = TallyServer()
    server.connect("c")
    return server


class TestMalformedRequests:
    def test_non_string_client_id(self):
        response = connected_server().handle(MallocRequest(None, 4))
        assert not response.ok and "malformed" in response.error

    def test_unknown_request_object(self):
        class Bogus:
            client_id = "c"

        response = connected_server().handle(Bogus())
        assert not response.ok

    def test_corrupted_envelope_is_retryable(self):
        server = connected_server()
        request = MallocRequest("c", 4)
        envelope = Envelope(request_id=1, client_id="c", payload=request,
                            checksum=checksum_of(request) ^ 0x1)
        response = server.handle(envelope)
        assert not response.ok and response.retryable
        assert "checksum" in response.error

    def test_server_survives_malformed_then_serves(self):
        server = connected_server()
        assert not server.handle(MallocRequest(42, 4)).ok
        assert server.handle(MallocRequest("c", 4)).ok


class TestApiMisuse:
    def test_double_free_is_an_error_response(self):
        server = connected_server()
        ref = server.handle(MallocRequest("c", 4)).value
        assert server.handle(FreeRequest("c", ref)).ok
        response = server.handle(FreeRequest("c", ref))
        assert not response.ok and not response.retryable

    def test_free_of_never_allocated_pointer(self):
        response = connected_server().handle(
            FreeRequest("c", GlobalRef("ghost")))
        assert not response.ok

    def test_memcpy_from_unregistered_pointer(self):
        response = connected_server().handle(
            MemcpyD2HRequest("c", GlobalRef("ghost"), 4))
        assert not response.ok

    def test_memcpy_to_unregistered_pointer(self):
        response = connected_server().handle(
            MemcpyH2DRequest("c", GlobalRef("ghost"), np.zeros(4)))
        assert not response.ok

    def test_launch_of_unregistered_kernel(self):
        response = connected_server().handle(LaunchKernelRequest(
            "c", "no_such_kernel", Dim3(1), Dim3(1), {}))
        assert not response.ok and "no_such_kernel" in response.error


class TestDisconnect:
    def test_disconnect_frees_everything(self):
        server = connected_server()
        server.handle(MallocRequest("c", 1024))
        server.handle(MallocRequest("c", 2048))
        state = server.disconnect("c")
        assert state is not None
        assert server.clients_collected == 1
        # the client is gone: further requests fail gracefully
        assert not server.handle(MallocRequest("c", 4)).ok

    def test_disconnect_is_idempotent(self):
        server = connected_server()
        assert server.disconnect("c") is not None
        assert server.disconnect("c") is None
        assert server.clients_collected == 1

    def test_disconnect_purges_replay_cache(self):
        server = connected_server()
        request = MallocRequest("c", 4)
        envelope = Envelope(request_id=1, client_id="c", payload=request,
                            checksum=checksum_of(request))
        server.handle(envelope)
        server.disconnect("c")
        server.connect("c")
        # same id from a reconnected client must re-execute, not replay
        assert server.handle(envelope).ok
        assert server.replay_hits == 0
