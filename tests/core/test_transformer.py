"""Tests for the server-side kernel transformer (functional path)."""

import numpy as np
import pytest

from repro.core import ExecMode, ExecPlan, KernelTransformer
from repro.errors import TransformError
from repro.ptx import Interpreter, make_case


class TestExecPlan:
    def test_defaults(self):
        plan = ExecPlan()
        assert plan.mode is ExecMode.ORIGINAL

    def test_validation(self):
        with pytest.raises(TransformError):
            ExecPlan(blocks_per_slice=0)
        with pytest.raises(TransformError):
            ExecPlan(workers=0)


class TestKernelTransformer:
    def _execute(self, transformer, case, plan):
        interp = Interpreter(case.memory)
        transformer.execute(interp, case.kernel, case.grid, case.block,
                            case.args, plan)
        case.check()

    def test_original_mode_passthrough(self):
        transformer = KernelTransformer()
        case = make_case("vector_add", np.random.default_rng(1))
        self._execute(transformer, case, ExecPlan(ExecMode.ORIGINAL))
        assert transformer.executions == 1
        assert transformer.pipeline.stats.sliced == 0

    def test_sliced_mode_uses_pipeline(self):
        transformer = KernelTransformer()
        case = make_case("block_sum", np.random.default_rng(2))
        self._execute(transformer, case,
                      ExecPlan(ExecMode.SLICED, blocks_per_slice=2))
        assert transformer.pipeline.stats.sliced == 1

    def test_ptb_mode_uses_pipeline(self):
        transformer = KernelTransformer()
        case = make_case("softmax_rows", np.random.default_rng(3))
        self._execute(transformer, case, ExecPlan(ExecMode.PTB, workers=2))
        assert transformer.pipeline.stats.preemptible == 1

    def test_repeated_launches_hit_transformation_cache(self):
        transformer = KernelTransformer()
        case = make_case("vector_add", np.random.default_rng(4))
        plan = ExecPlan(ExecMode.PTB, workers=2)
        for _ in range(3):
            fresh = make_case("vector_add", np.random.default_rng(4))
            interp = Interpreter(fresh.memory)
            transformer.execute(interp, case.kernel, fresh.grid, fresh.block,
                                fresh.args, plan)
            fresh.check()
        assert transformer.pipeline.stats.preemptible == 1
        assert transformer.pipeline.stats.cache_hits == 2

    def test_ptb_workers_capped_at_grid(self):
        transformer = KernelTransformer()
        case = make_case("iota", np.random.default_rng(5))
        # far more workers than blocks: must still be correct
        self._execute(transformer, case, ExecPlan(ExecMode.PTB, workers=500))
