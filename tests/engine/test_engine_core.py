"""Unit tests for the time-warp engine core (`repro.engine`).

A toy counting domain stands in for the cluster: one tick per second
increments a counter and emits an output event, and cross-shard ops
add to the counter.  Determinism of the domain is what makes rollback
coast-forward replay exact, so these tests assert both the mechanics
(op log, annihilation, revoke, watermarks, GVT ordering) and the
bit-equivalence of rolled-back state against never-speculated state.
"""

from dataclasses import dataclass

import pytest

from repro.engine import (
    CommitTracer,
    InlineBackend,
    Op,
    OpQueue,
    ShardCell,
    ShardProgram,
    WorkerHost,
)
from repro.gpu import EventLoop


@dataclass(frozen=True)
class _Evt:
    ts: float
    shard: int
    value: int


class _ToyDomain:
    """Deterministic counter: +1 per tick at t=1..until, ops add more."""

    def __init__(self, index: int, until: float) -> None:
        self.loop = EventLoop()
        self.index = index
        self.outputs: list[_Evt] = []
        self.value = 0
        t = 1.0
        while t <= until:
            self.loop.schedule_at(t, self._tick)
            t += 1.0

    def _tick(self) -> None:
        self.value += 1
        self.outputs.append(_Evt(self.loop.now, self.index, self.value))

    def apply(self, kind: str, payload, at: float):
        if kind == "add":
            self.value += payload
            return None
        if kind == "read":
            return self.value
        if kind == "bomb":
            self.loop.schedule_at(payload, self._boom)
            return None
        raise AssertionError(f"unknown op {kind!r}")

    def _boom(self) -> None:
        raise RuntimeError("boom")

    def query(self, kind: str, payload):
        assert kind == "value"
        return self.value

    def finalize(self, at: float):
        self.loop.run_until(at)
        return (self.value, self.loop.events_processed)


@dataclass(frozen=True)
class _ToyProgram(ShardProgram):
    until: float = 10.0

    def build(self, index: int) -> _ToyDomain:
        return _ToyDomain(index, self.until)


def _op(seq, shard, at, kind="add", payload=1, want_result=False):
    return Op(seq=seq, shard=shard, at=at, kind=kind, payload=payload,
              want_result=want_result)


# ---------------------------------------------------------------------------
# OpQueue: the outbox anti-message fast path
# ---------------------------------------------------------------------------

def test_opqueue_preserves_push_order():
    q = OpQueue()
    ops = [_op(i, 0, float(i)) for i in range(5)]
    for op in ops:
        q.push(op)
    assert q.drain() == ops
    assert q.drain() == []


def test_opqueue_annihilate_cancels_in_place():
    q = OpQueue()
    for i in range(3):
        q.push(_op(i, 0, 1.0))
    assert q.annihilate(1) is True
    assert q.annihilate(1) is False  # already gone
    assert [op.seq for op in q.drain()] == [0, 2]


# ---------------------------------------------------------------------------
# CommitTracer: GVT merge order and fossil collection
# ---------------------------------------------------------------------------

class _Recorder:
    enabled = True

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def test_commit_tracer_orders_by_ts_then_source():
    sink = _Recorder()
    commit = CommitTracer(sink)
    commit.add_shard_events(1, [_Evt(2.0, 1, 1)])
    commit.add_shard_events(0, [_Evt(1.0, 0, 1), _Evt(2.0, 0, 2)])
    commit.emit(_Evt(2.0, -1, 0))  # coordinator event, same ts
    assert commit.commit(2.0) == 1  # only ts < 2.0 commits
    assert [e.ts for e in sink.events] == [1.0]
    assert commit.close() == 3
    # at equal ts: coordinator (source -1) first, then shard 0, shard 1
    assert [(e.ts, e.shard) for e in sink.events] == [
        (1.0, 0), (2.0, -1), (2.0, 0), (2.0, 1)]
    assert commit.committed == 4


def test_commit_tracer_frees_committed_buffers():
    commit = CommitTracer(_Recorder())
    commit.add_shard_events(0, [_Evt(float(t), 0, t) for t in range(10)])
    commit.commit(5.0)
    assert len(commit._pending) == 5  # fossil-collected below GVT
    commit.commit(5.0)  # idempotent
    assert len(commit._pending) == 5


# ---------------------------------------------------------------------------
# ShardCell: speculation window, rollback, revoke, watermarks
# ---------------------------------------------------------------------------

def test_advance_is_exclusive_and_speculation_is_open():
    cell = ShardCell(_ToyProgram(), 0)
    cell.advance(2.0, 5.0)
    # exclusive: the tick at exactly 2.0 has not run
    assert cell.domain.value == 1
    # an event at exactly the grant blocks speculation outright:
    # horizon-time ops must apply before it, so it cannot be skipped
    assert cell.speculate(16) == 0
    cell.advance(2.5, 5.0)
    assert cell.domain.value == 2
    # open window: ticks strictly inside (2.5, 5.0) run — 3.0 and 4.0
    # only, because 5.0 awaits its own grant
    while cell.speculate(16):
        pass
    assert cell.domain.value == 4
    assert cell.domain.loop.now == 4.0


def test_apply_in_the_future_coasts_forward():
    cell = ShardCell(_ToyProgram(), 0)
    result = cell.apply(_op(0, 0, 3.5, kind="read", want_result=True))
    assert result == 3  # ticks 1..3 ran on the way
    assert cell.domain.loop.now == 3.5


def test_straggler_op_rolls_back_speculated_state():
    cell = ShardCell(_ToyProgram(), 0)
    cell.advance(2.5, 8.0)
    while cell.speculate(16):
        pass
    assert cell.domain.loop.now == 7.0  # deep in speculation
    cell.apply(_op(0, 0, 3.5, payload=10))
    assert cell.rollbacks == 1
    assert cell.domain.loop.now == 3.5
    # replayed history: ticks 1..3 plus the op
    assert cell.domain.value == 13


def test_rollback_state_matches_never_speculated_run():
    spec = ShardCell(_ToyProgram(), 0)
    spec.advance(1.5, 9.0)
    while spec.speculate(16):
        pass
    spec.apply(_op(0, 0, 2.5, payload=5))   # forces rollback
    spec.advance(6.0, 6.0)
    assert spec.rollbacks == 1

    plain = ShardCell(_ToyProgram(), 0)
    plain.advance(1.5, 1.5)
    plain.apply(_op(0, 0, 2.5, payload=5))
    plain.advance(6.0, 6.0)
    assert plain.rollbacks == 0

    assert spec.finalize(9.0) == plain.finalize(9.0)


def test_revoke_strikes_op_from_history():
    cell = ShardCell(_ToyProgram(), 0)
    cell.apply(_op(0, 0, 2.0, payload=100))
    cell.advance(4.0, 4.0)
    assert cell.domain.value == 103
    assert cell.revoke(0, 2.0) is True
    assert cell.revoke(0, 2.0) is False  # no longer in the log
    cell.advance(4.0, 4.0)
    assert cell.domain.value == 3  # history without the op
    assert cell.rollbacks == 1


def test_drain_outputs_suppresses_rollback_duplicates():
    cell = ShardCell(_ToyProgram(), 0)
    cell.advance(4.5, 9.0)
    shipped = cell.drain_outputs(4.5)
    assert [e.ts for e in shipped] == [1.0, 2.0, 3.0, 4.0]
    while cell.speculate(16):
        pass
    cell.apply(_op(0, 0, 4.5))  # rollback regenerates ticks 1..4
    cell.advance(6.5, 6.5)
    shipped = cell.drain_outputs(6.5)
    # the watermark keeps already-shipped ticks from re-shipping
    assert [e.ts for e in shipped] == [5.0, 6.0]


def test_speculation_error_is_quarantined_until_committed():
    cell = ShardCell(_ToyProgram(), 0)
    cell.apply(_op(0, 0, 1.5, kind="bomb", payload=3.0))
    cell.advance(2.25, 8.0)
    cell.speculate(64)
    assert cell.speculate(64) == 0  # halted on the quarantined error
    cell.advance(2.5, 8.0)  # error time 3.0 not yet committed: fine
    with pytest.raises(RuntimeError, match="boom"):
        cell.advance(3.5, 8.0)


def test_rollback_discards_quarantined_error():
    cell = ShardCell(_ToyProgram(), 0)
    cell.apply(_op(0, 0, 1.5, kind="bomb", payload=3.0))
    cell.advance(2.25, 8.0)
    cell.speculate(64)
    assert cell.revoke(0, 1.5) is True  # anti-message cancels the bomb
    cell.advance(5.0, 8.0)  # past the would-be failure: no raise
    assert cell.domain.value == 4


# ---------------------------------------------------------------------------
# WorkerHost + InlineBackend: the protocol end to end
# ---------------------------------------------------------------------------

def test_worker_host_holdback_pins_spec_target():
    host = WorkerHost(_ToyProgram(), [0, 1])
    host.advance(2.5, 6.0, frozenset([1]))
    while host.speculate_slice(16):
        pass
    assert host.cells[0].domain.loop.now == 5.0  # speculated
    assert host.cells[1].domain.loop.now == 2.5  # held back


def test_inline_backend_exercises_rollback_and_stays_exact():
    backend = InlineBackend(_ToyProgram(), 2)
    backend.start()
    shipped = []
    out = backend.advance(2.5, 6.0, frozenset())
    shipped.extend(out.get(0, []))
    # inline speculates to the hilt, so this grant-time op is a
    # straggler for shard 0 and must roll it back
    backend.op(_op(0, 0, 2.5, payload=10))
    out = backend.advance(4.0, 6.0, frozenset())
    shipped.extend(out.get(0, []))
    assert backend.query(0, "value", None) == 13
    reports, outputs, stats = backend.finalize(10.0)
    shipped.extend(outputs.get(0, []))
    assert reports[0] == (20, reports[0][1])
    assert reports[1][0] == 10
    events0, rollbacks0 = stats[0]
    assert rollbacks0 >= 1
    # outputs ship exactly once per tick despite the rollback
    assert [e.ts for e in shipped] == [float(t) for t in range(1, 11)]
    backend.stop()


def test_inline_backend_revoke_annihilates_or_rolls_back():
    backend = InlineBackend(_ToyProgram(), 1)
    backend.start()
    backend.op(_op(0, 0, 2.0, payload=100))  # parked in the outbox
    assert backend.revoke(0, 0, 2.0) is True  # annihilated for free
    backend.op(_op(1, 0, 3.0, payload=7, want_result=True))
    assert backend.revoke(1, 0, 3.0) is True  # worker-side strike
    reports, _outputs, stats = backend.finalize(5.0)
    assert reports[0][0] == 5  # neither op survives in history
    backend.stop()
