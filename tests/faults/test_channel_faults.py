"""Channel-level fault tolerance: retries, replay, checksums, crashes."""

import random
from collections import Counter
from dataclasses import replace

import numpy as np
import pytest

from repro.core import ExecMode, ExecPlan, TallyServer, connect_runtime
from repro.errors import ChannelTimeout, ClientCrashed
from repro.faults import FaultConfig, FaultInjector
from repro.ptx.library import vector_add
from repro.runtime import FatBinary
from repro.virt import Channel, MallocRequest, Response, SHARED_MEMORY


class ScriptedInjector:
    """Injector whose channel decisions follow a fixed script.

    Exhausted scripts answer "none", so a test can stage e.g. one drop
    followed by clean retries.
    """

    enabled = True

    def __init__(self, request=(), response=()):
        self._scripts = {"request": list(request), "response": list(response)}
        self.config = FaultConfig(delay_time=1e-3)
        self.injected = Counter()

    def channel_fault(self, direction):
        script = self._scripts[direction]
        fault = script.pop(0) if script else "none"
        if fault != "none":
            self.injected[f"{direction}_{fault}"] += 1
        return fault

    def crash_now(self):
        return False


def server_and_channel(injector) -> tuple[TallyServer, Channel]:
    server = TallyServer()
    server.connect("c")
    return server, Channel(server.handle, faults=injector, client_id="c")


class TestRetry:
    def test_dropped_request_is_retried(self):
        server, channel = server_and_channel(
            ScriptedInjector(request=["drop"]))
        response = channel.call(MallocRequest("c", 16))
        assert response.ok
        assert channel.stats.retries == 1
        assert channel.stats.timeouts == 1
        assert server.client("c").memory_manager.live_buffers() == 1

    def test_backoff_and_timeout_cost_simulated_time(self):
        clean = Channel(lambda env: Response.success())
        clean.call(MallocRequest("c", 16))
        server, lossy = server_and_channel(ScriptedInjector(
            request=["drop", "drop"]))
        lossy.call(MallocRequest("c", 16))
        # two timeouts, two jittered backoffs (mirror the channel's
        # seeded decorrelated-jitter stream: seed 0, client "c"), and
        # the wire time of the two request copies that went nowhere
        rng = random.Random("0/c/backoff")
        base, cap = lossy.config.retry_backoff, lossy.config.backoff_cap
        prev = base
        backoffs = 0.0
        for _ in range(2):
            prev = min(cap, rng.uniform(base, max(base, prev * 3)))
            backoffs += prev
        extra = (2 * lossy.config.timeout + backoffs
                 + 2 * lossy.cost_of(MallocRequest("c", 16)))
        assert lossy.stats.simulated_time == pytest.approx(
            clean.stats.simulated_time + extra)

    def test_jitter_off_restores_deterministic_doubling(self):
        config = replace(SHARED_MEMORY, backoff_jitter=False)
        clean = Channel(lambda env: Response.success(), config)
        clean.call(MallocRequest("c", 16))
        server = TallyServer()
        server.connect("c")
        lossy = Channel(server.handle, config,
                        faults=ScriptedInjector(request=["drop", "drop"]),
                        client_id="c")
        lossy.call(MallocRequest("c", 16))
        # 50us then 100us: the legacy exponential-doubling schedule
        extra = (2 * lossy.config.timeout
                 + lossy.config.retry_backoff * 3
                 + 2 * lossy.cost_of(MallocRequest("c", 16)))
        assert lossy.stats.simulated_time == pytest.approx(
            clean.stats.simulated_time + extra)

    def test_exhausted_budget_raises_channel_timeout(self):
        server, channel = server_and_channel(
            ScriptedInjector(request=["drop"] * 99))
        with pytest.raises(ChannelTimeout, match="after 5 attempts"):
            channel.call(MallocRequest("c", 16))
        assert channel.stats.retries == channel.config.max_attempts - 1
        # the drop happened before the server: nothing was allocated
        assert server.client("c").memory_manager.live_buffers() == 0

    def test_retries_reuse_the_request_id(self):
        seen = []
        injector = ScriptedInjector(response=["drop"])

        def handler(envelope):
            seen.append(envelope.request_id)
            return Response.success()

        channel = Channel(handler, faults=injector)
        channel.call(MallocRequest("c", 16))
        assert len(seen) == 2 and seen[0] == seen[1]


class TestIdempotentReplay:
    def test_duplicate_request_executes_once(self):
        server, channel = server_and_channel(
            ScriptedInjector(request=["duplicate"]))
        assert channel.call(MallocRequest("c", 16)).ok
        assert server.client("c").memory_manager.live_buffers() == 1
        assert server.replay_hits == 1

    def test_retry_after_lost_response_executes_once(self):
        """The op ran; only the reply was lost.  Replay, don't re-run."""
        server, channel = server_and_channel(
            ScriptedInjector(response=["drop"]))
        assert channel.call(MallocRequest("c", 16)).ok
        assert server.client("c").memory_manager.live_buffers() == 1
        assert server.replay_hits == 1


class TestChecksums:
    def test_corrupted_request_detected_and_retried(self):
        server, channel = server_and_channel(
            ScriptedInjector(request=["corrupt"]))
        assert channel.call(MallocRequest("c", 16)).ok
        # the corrupted copy was rejected before execution
        assert server.client("c").memory_manager.live_buffers() == 1
        assert server.replay_hits == 0
        assert channel.stats.retries == 1

    def test_corrupted_response_retried(self):
        server, channel = server_and_channel(
            ScriptedInjector(response=["corrupt"]))
        assert channel.call(MallocRequest("c", 16)).ok
        assert channel.stats.retries == 1
        assert server.replay_hits == 1  # the re-sent request replays


class TestDelayAndCrash:
    def test_delay_adds_transport_time_only(self):
        server, delayed = server_and_channel(
            ScriptedInjector(request=["delay"]))
        delayed.call(MallocRequest("c", 16))
        server2, clean = server_and_channel(ScriptedInjector())
        clean.call(MallocRequest("c", 16))
        assert delayed.stats.simulated_time == pytest.approx(
            clean.stats.simulated_time + delayed.faults.config.delay_time)
        assert delayed.stats.retries == 0

    def test_injected_crash_raises_client_crashed(self):
        injector = FaultInjector(FaultConfig(crash_after_calls=2))
        server = TallyServer(faults=injector)
        channel = server.connect("c")
        channel.call(MallocRequest("c", 16))
        channel.call(MallocRequest("c", 16))
        with pytest.raises(ClientCrashed, match="crashed at request"):
            channel.call(MallocRequest("c", 16))


class TestEndToEnd:
    def test_correct_results_through_a_lossy_channel(self):
        """vector_add survives a 15 %-faulty transport bit-exactly."""
        injector = FaultInjector(FaultConfig(
            seed=4, drop=0.05, duplicate=0.05, corrupt=0.05))
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.ORIGINAL),
                             faults=injector)
        rt = connect_runtime(server, "c")
        rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        n = 64
        x, y = np.arange(n, dtype=np.float64), np.ones(n)
        bx, by, out = rt.malloc(n * 8), rt.malloc(n * 8), rt.malloc(n * 8)
        rt.memcpy_h2d(bx, x)
        rt.memcpy_h2d(by, y)
        rt.launch_kernel("vector_add", (4,), (16,),
                         {"x": bx, "y": by, "out": out, "n": n})
        np.testing.assert_array_equal(rt.memcpy_d2h(out, n), x + y)
        assert sum(injector.injected.values()) > 0  # faults did fire
