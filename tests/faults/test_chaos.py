"""Chaos matrix: every fault kind x every policy, checked and replayed.

Each cell runs a short co-location with the invariant checker enabled:
surviving the run *is* the assertion (the checker raises
InvariantViolation on any accounting breach during recovery).  Each
cell is then re-run with the same seed and must reproduce the same
fault counts and the same completions — determinism is what makes
chaos failures debuggable.
"""

import pytest

from repro.core import TallyConfig
from repro.faults import FaultConfig
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.harness.colocate import POLICY_NAMES

FAULT_KINDS = {
    "crash": FaultConfig(seed=1, crash_at=1.0),
    "slot": FaultConfig(seed=1, slot_fault_rate=4.0),
    "lost_ack": FaultConfig(seed=1, lost_ack=0.5),
    "transform": FaultConfig(seed=1, transform_fail_rate=0.7),
    "everything": FaultConfig(seed=1, crash_at=1.0, slot_fault_rate=2.0,
                              lost_ack=0.3, transform_fail_rate=0.5),
}

CFG = RunConfig(
    duration=1.4, warmup=0.4,
    # faulted runs arm the watchdog so lost acks cannot wedge a policy
    tally_config=TallyConfig(preempt_deadline=200e-6),
)

JOBS = [JobSpec.inference("bert_infer", load=0.4),
        JobSpec.training("whisper_train")]


def run_cell(policy: str, faults: FaultConfig):
    return run_colocation(policy, JOBS, CFG, check=True, faults=faults)


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
def test_fault_matrix_survives_with_invariants(policy, kind):
    result = run_cell(policy, FAULT_KINDS[kind])
    assert result.invariant_checks > 0
    hp = result.job("bert_infer#0")
    assert hp.completed > 0  # the HP service kept serving throughout


@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
def test_chaos_replays_bit_identically(kind):
    first = run_cell("Tally", FAULT_KINDS[kind])
    second = run_cell("Tally", FAULT_KINDS[kind])
    assert first.fault_counts == second.fault_counts
    assert ({c: j.completed for c, j in first.jobs.items()}
            == {c: j.completed for c, j in second.jobs.items()})
    hp1, hp2 = first.job("bert_infer#0"), second.job("bert_infer#0")
    assert hp1.latency is not None and hp2.latency is not None
    assert hp1.latency.p99 == hp2.latency.p99


def test_different_seed_different_schedule():
    a = run_cell("Tally", FaultConfig(seed=1, lost_ack=0.5,
                                      slot_fault_rate=4.0))
    b = run_cell("Tally", FaultConfig(seed=2, lost_ack=0.5,
                                      slot_fault_rate=4.0))
    assert a.fault_counts != b.fault_counts


def test_be_crash_leaves_hp_p99_within_ten_percent():
    """The acceptance bar: a dying BE job is invisible to the HP one."""
    cfg = RunConfig(duration=4.0, warmup=0.5,
                    tally_config=TallyConfig(preempt_deadline=200e-6))
    clean = run_colocation("Tally", JOBS, cfg, check=True)
    jobs = [JOBS[0], JobSpec.training("whisper_train", crash_at=2.0)]
    chaos = run_colocation("Tally", jobs, cfg, check=True,
                           faults=FaultConfig(seed=3, lost_ack=0.3))
    clean_p99 = clean.job("bert_infer#0").latency.p99
    chaos_p99 = chaos.job("bert_infer#0").latency.p99
    assert chaos_p99 <= clean_p99 * 1.10
    assert chaos.fault_counts.get("client_crash") == 1


def test_chaos_cell_identical_with_warm_transform_memo():
    """Smoke: a warm process-wide memo never perturbs a chaos cell."""
    import numpy as np

    from repro.ptx.library import case_names, make_case
    from repro.transform import TransformPipeline, transform_memo

    transform_memo().clear()
    try:
        cold = run_cell("Tally", FAULT_KINDS["everything"])
        pipeline = TransformPipeline(memo=transform_memo())
        for name in case_names():
            pipeline.sliced(make_case(name, np.random.default_rng(0)).kernel)
        warm = run_cell("Tally", FAULT_KINDS["everything"])
    finally:
        transform_memo().clear()
    assert cold.fault_counts == warm.fault_counts
    assert ({c: j.completed for c, j in cold.jobs.items()}
            == {c: j.completed for c, j in warm.jobs.items()})


def test_fault_free_run_unchanged_by_faults_machinery():
    """faults=None and a zero-rate config produce identical runs."""
    plain = run_colocation("Tally", JOBS, CFG, check=True)
    armed = run_colocation("Tally", JOBS, CFG, check=True,
                           faults=FaultConfig(seed=9))
    assert armed.fault_counts == {}
    assert ({c: j.completed for c, j in plain.jobs.items()}
            == {c: j.completed for c, j in armed.jobs.items()})
