"""FaultConfig validation and CLI spec parsing."""

import pytest

from repro.errors import HarnessError
from repro.faults import FaultConfig


class TestValidation:
    def test_defaults_are_all_off(self):
        cfg = FaultConfig()
        assert not cfg.any_channel_faults
        assert cfg.crash_after_calls is None and cfg.crash_at is None

    @pytest.mark.parametrize("field", ["drop", "duplicate", "corrupt",
                                       "delay", "kernel_fault",
                                       "transform_fail_rate", "lost_ack"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(HarnessError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(HarnessError):
            FaultConfig(**{field: -0.1})

    def test_slot_fault_rate_must_be_nonnegative(self):
        with pytest.raises(HarnessError):
            FaultConfig(slot_fault_rate=-1.0)
        FaultConfig(slot_fault_rate=7.5)  # a rate, not a probability

    def test_any_channel_faults(self):
        assert FaultConfig(drop=0.1).any_channel_faults
        assert FaultConfig(delay=0.1).any_channel_faults
        assert not FaultConfig(lost_ack=0.5).any_channel_faults


class TestParse:
    def test_parses_typed_fields(self):
        cfg = FaultConfig.parse("seed=7,drop=0.25,crash_at=3.0,"
                                "crash_after_calls=12")
        assert cfg.seed == 7 and isinstance(cfg.seed, int)
        assert cfg.drop == 0.25
        assert cfg.crash_at == 3.0
        assert cfg.crash_after_calls == 12

    def test_whitespace_tolerated(self):
        cfg = FaultConfig.parse(" seed=1 , lost_ack=0.5 ")
        assert cfg.seed == 1 and cfg.lost_ack == 0.5

    def test_unknown_key_rejected(self):
        with pytest.raises(HarnessError, match="known keys"):
            FaultConfig.parse("seed=1,gremlins=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(HarnessError):
            FaultConfig.parse("drop=lots")

    def test_out_of_range_value_rejected(self):
        with pytest.raises(HarnessError):
            FaultConfig.parse("drop=2.0")
