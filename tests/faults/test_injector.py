"""Determinism and draw-budget properties of the fault injector."""

from dataclasses import replace

from repro.faults import FaultConfig, FaultInjector, NULL_INJECTOR


def drain(injector: FaultInjector, n: int = 200) -> list:
    """A fixed probe sequence mixing every kind of opportunity."""
    out = []
    for i in range(n):
        out.append(injector.channel_fault("request"))
        out.append(injector.channel_fault("response"))
        out.append(injector.kernel_fault())
        out.append(injector.lost_preempt_ack())
        out.append(injector.transform_fault(f"k{i % 7}", "ptb"))
    return out


CHAOS = FaultConfig(seed=13, drop=0.1, duplicate=0.1, corrupt=0.1,
                    delay=0.1, kernel_fault=0.2, transform_fail_rate=0.5,
                    lost_ack=0.3, slot_fault_rate=3.0)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        assert drain(FaultInjector(CHAOS)) == drain(FaultInjector(CHAOS))

    def test_different_seed_different_decisions(self):
        other = replace(CHAOS, seed=14)
        assert drain(FaultInjector(CHAOS)) != drain(FaultInjector(other))

    def test_slot_schedule_immune_to_other_draws(self):
        """Per-message draws must not shift the slot-fault schedule."""
        quiet = FaultInjector(CHAOS)
        noisy = FaultInjector(CHAOS)
        drain(noisy)
        assert quiet.slot_fault_times(5.0) == noisy.slot_fault_times(5.0)

    def test_slot_times_sorted_within_duration(self):
        times = FaultInjector(CHAOS).slot_fault_times(5.0)
        assert times == sorted(times)
        assert all(0 <= t < 5.0 for t in times)
        assert times  # rate 3/s over 5 s: statistically certain


class TestDrawBudget:
    def test_disabled_faults_consume_no_randomness(self):
        """All-zero rates must not touch the RNG (byte-identical runs)."""
        injector = FaultInjector(FaultConfig(seed=1))
        before = injector._rng.getstate()
        drain(injector, n=50)
        assert injector._rng.getstate() == before

    def test_channel_fault_one_draw_regardless_of_rates(self):
        one = FaultInjector(FaultConfig(seed=5, drop=0.01))
        many = FaultInjector(FaultConfig(seed=5, drop=0.01, duplicate=0.01,
                                         corrupt=0.01, delay=0.01))
        for _ in range(100):
            one.channel_fault("request")
            many.channel_fault("request")
        assert one._rng.getstate() == many._rng.getstate()


class TestSemantics:
    def test_transform_fault_memoized_per_kernel_mode(self):
        injector = FaultInjector(FaultConfig(seed=3,
                                             transform_fail_rate=0.5))
        first = {(k, m): injector.transform_fault(k, m)
                 for k in "abcdef" for m in ("ptb", "sliced")}
        for (k, m), verdict in first.items():
            assert injector.transform_fault(k, m) is verdict
        assert injector.injected["transform_fault"] == sum(
            first.values())  # counted once per (kernel, mode), not per ask

    def test_crash_fires_at_exact_call_index(self):
        injector = FaultInjector(FaultConfig(crash_after_calls=3))
        assert [injector.crash_now() for _ in range(5)] == [
            False, False, False, True, True]
        assert injector.injected["client_crash"] == 2

    def test_injected_counts_by_kind(self):
        injector = FaultInjector(FaultConfig(seed=2, drop=1.0))
        injector.channel_fault("request")
        injector.channel_fault("response")
        assert injector.injected["request_drop"] == 1
        assert injector.injected["response_drop"] == 1


class TestNullInjector:
    def test_disabled_and_silent(self):
        assert NULL_INJECTOR.enabled is False
        assert NULL_INJECTOR.channel_fault("request") == "none"
        assert NULL_INJECTOR.crash_now() is False
        assert NULL_INJECTOR.kernel_fault() is False
        assert NULL_INJECTOR.transform_fault("k", "ptb") is False
        assert NULL_INJECTOR.lost_preempt_ack() is False
        assert NULL_INJECTOR.slot_fault_times(10.0) == []
        assert not NULL_INJECTOR.injected


class TestExtremeFlapping:
    """Flap cycles far faster than any control-plane reaction time."""

    EXTREME = FaultConfig(seed=7, device_flap_rate=2.0, flap_count=25,
                          flap_period=0.01)

    def test_schedule_is_bounded_ordered_and_alternating(self):
        schedule = FaultInjector(self.EXTREME).device_fault_schedule(
            0, 3.0)
        assert schedule  # an extreme rate must actually produce bursts
        times = [e.time for e in schedule]
        assert times == sorted(times)
        assert all(0 <= t <= 3.0 for t in times)
        assert all(e.flapping for e in schedule)
        # each burst alternates degrade/recover, never two of a kind
        kinds = [e.kind for e in schedule]
        for a, b in zip(kinds, kinds[1:]):
            assert (a, b) in (("degrade", "recover"),
                              ("recover", "degrade"))
        assert FaultInjector(self.EXTREME).device_fault_schedule(
            0, 3.0) == schedule

    def test_quarantine_converges_and_conservation_holds(self):
        """A device flapping every 10ms must be quarantined exactly
        once (not re-quarantined per cycle), and no request may be
        lost in the proactive migrations it triggers."""
        from repro.cluster import ClusterController, ClusterJob
        from repro.harness import RunConfig

        jobs = [ClusterJob("bert_infer", load=0.3, traffic_seed=0),
                ClusterJob("resnet50_train", traffic_seed=1)]
        controller = ClusterController(
            jobs, 2, config=RunConfig(duration=3.0, warmup=0.5),
            faults=self.EXTREME, check=True)
        result = controller.run()  # check=True audits conservation
        flapped = [s for s in controller.shards
                   if s.flap_transitions >= controller.flap_threshold]
        assert flapped  # the storm of cycles tripped the threshold
        for shard in flapped:
            assert not shard.accepting   # fenced off, and it stays off
            assert shard.alive           # quarantined, not crashed
        assert result.recovery.device_faults["device_degrade"] > 10
        assert result.invariant_checks > 0
