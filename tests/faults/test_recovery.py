"""Recovery mechanisms: watchdog, degradation ladder, client GC.

Each test injects one fault kind and asserts — via trace events and
final state — that the matching tolerance layer recovered.
"""

import pytest
import warnings

from repro.baselines import Priority, REEF, TimeSlicing
from repro.core import Tally, TallyConfig
from repro.errors import PreemptTimeout, TransformFallback
from repro.faults import FaultConfig, FaultInjector
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor
from repro.trace import (
    ClientGC,
    PreemptLost,
    PreemptRequest,
    TransformDegrade,
    Tracer,
    WatchdogReset,
)

SPEC = A100_SXM4_40GB
DEADLINE = 200e-6


def kernel(name="k", blocks=5000, bd=50e-6, tpb=256):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


def make_tally(faults=None, tracer=None, **config_kw):
    engine = EventLoop()
    device = GPUDevice(SPEC, engine, tracer=tracer, faults=faults)
    tally = Tally(device, engine, TallyConfig(**config_kw))
    return tally, device, engine


def lost_ack_run(**config_kw):
    """BE PTB kernel under way; HP arrives; the preempt flag is lost."""
    tracer = Tracer(capacity=None)
    injector = FaultInjector(FaultConfig(seed=1, lost_ack=1.0))
    tally, device, engine = make_tally(
        faults=injector, tracer=tracer,
        slice_fractions=(), worker_sm_multiples=(1,), **config_kw)
    tally.register_client("hp", Priority.HIGH)
    tally.register_client("be", Priority.BEST_EFFORT)
    done = {}
    tally.submit("be", kernel("be_k", blocks=50_000, bd=100e-6),
                 lambda: done.setdefault("be", engine.now))
    engine.schedule(2e-3, lambda: tally.submit(
        "hp", kernel("hp_k", blocks=100, bd=50e-6),
        lambda: done.setdefault("hp", engine.now)))
    return tally, engine, tracer, done


class TestWatchdog:
    def test_lost_ack_recovered_by_forced_reset(self):
        tally, engine, tracer, done = lost_ack_run(
            preempt_deadline=DEADLINE)
        engine.run()
        assert "hp" in done and "be" in done  # nobody wedged
        lost = [e for e in tracer.events if isinstance(e, PreemptLost)]
        resets = [e for e in tracer.events if isinstance(e, WatchdogReset)]
        assert lost and resets
        assert tally.stats.watchdog_resets == len(resets)

    def test_reset_fires_at_the_deadline(self):
        tally, engine, tracer, done = lost_ack_run(
            preempt_deadline=DEADLINE)
        engine.run()
        requests = {e.launch_seq: e.ts for e in tracer.events
                    if isinstance(e, PreemptRequest)
                    and e.mechanism == "ptb-flag"}
        for reset in (e for e in tracer.events
                      if isinstance(e, WatchdogReset)):
            assert reset.deadline == DEADLINE
            assert reset.waited == pytest.approx(DEADLINE)
            assert reset.ts == pytest.approx(
                requests[reset.launch_seq] + DEADLINE)

    def test_escalation_can_be_disabled(self):
        tally, engine, tracer, done = lost_ack_run(
            preempt_deadline=DEADLINE, watchdog_escalate=False)
        with pytest.raises(PreemptTimeout):
            engine.run()

    def test_watchdog_silent_on_healthy_preemption(self):
        """Cooperative preemption beats the deadline: no resets."""
        tracer = Tracer(capacity=None)
        tally, device, engine = make_tally(
            tracer=tracer, preempt_deadline=50e-3,
            slice_fractions=(), worker_sm_multiples=(1,))
        tally.register_client("hp", Priority.HIGH)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = {}
        tally.submit("be", kernel("be_k", blocks=50_000, bd=100e-6),
                     lambda: done.setdefault("be", engine.now))
        engine.schedule(2e-3, lambda: tally.submit(
            "hp", kernel("hp_k", blocks=100, bd=50e-6),
            lambda: done.setdefault("hp", engine.now)))
        engine.run()
        assert "hp" in done and "be" in done
        assert tally.stats.preemptions > 0
        assert tally.stats.watchdog_resets == 0


class TestDegradationLadder:
    def test_ptb_failure_degrades_and_completes(self):
        tracer = Tracer(capacity=None)
        injector = FaultInjector(FaultConfig(seed=1,
                                             transform_fail_rate=1.0))
        tally, device, engine = make_tally(faults=injector, tracer=tracer)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = []
        tally.submit("be", kernel("be_k", blocks=20_000, bd=50e-6),
                     lambda: done.append(engine.now))
        engine.run()
        assert done  # the kernel still ran to completion
        degrades = [e for e in tracer.events
                    if isinstance(e, TransformDegrade)]
        assert degrades
        # rate 1.0 fails every rung: the ladder must land on original
        assert degrades[-1].to_transform == "original"
        assert tally.stats.transform_fallbacks == len(degrades)

    def test_fault_free_run_never_degrades(self):
        tracer = Tracer(capacity=None)
        tally, device, engine = make_tally(tracer=tracer)
        tally.register_client("be", Priority.BEST_EFFORT)
        tally.submit("be", kernel("be_k", blocks=20_000, bd=50e-6),
                     lambda: None)
        engine.run()
        assert tally.stats.transform_fallbacks == 0
        assert not [e for e in tracer.events
                    if isinstance(e, TransformDegrade)]


class TestSchedulerGC:
    @pytest.mark.parametrize("policy_cls", [Tally, TimeSlicing, REEF])
    def test_survivors_progress_after_be_disconnect(self, policy_cls):
        engine = EventLoop()
        tracer = Tracer(capacity=None)
        device = GPUDevice(SPEC, engine, tracer=tracer)
        if policy_cls is Tally:
            policy = Tally(device, engine, TallyConfig())
        else:
            policy = policy_cls(device, engine)
        policy.register_client("hp", Priority.HIGH)
        policy.register_client("be", Priority.BEST_EFFORT)
        policy.submit("be", kernel("be_k", blocks=50_000, bd=100e-6),
                      lambda: None)
        engine.schedule(1e-3, lambda: policy.disconnect("be"))
        done = []
        engine.schedule(2e-3, lambda: policy.submit(
            "hp", kernel("hp_k", blocks=100, bd=50e-6),
            lambda: done.append(engine.now)))
        engine.run()
        assert done  # the survivor got the device
        gcs = [e for e in tracer.events if isinstance(e, ClientGC)]
        assert gcs and gcs[0].client_id == "be"
        assert gcs[0].launches_cancelled >= 1

    def test_hp_disconnect_unblocks_best_effort(self):
        """A crashed HP client must not park BE work forever."""
        tally, device, engine = make_tally(
            slice_fractions=(), worker_sm_multiples=(1,))
        tally.register_client("hp", Priority.HIGH)
        tally.register_client("be", Priority.BEST_EFFORT)
        done = []
        tally.submit("hp", kernel("hp_k", blocks=864 * 16, bd=1e-3),
                     lambda: done.append("hp"))
        engine.schedule(0.5e-3, lambda: tally.submit(
            "be", kernel("be_k", blocks=2000, bd=50e-6),
            lambda: done.append("be")))
        engine.schedule(1e-3, lambda: tally.disconnect("hp"))
        engine.run()
        assert "be" in done
        assert "hp" not in done  # its callback was severed

    def test_disconnect_unknown_client_is_a_noop(self):
        tally, device, engine = make_tally()
        tally.disconnect("ghost")  # idempotent, no raise


class TestFunctionalLadder:
    def test_transformer_falls_back_with_warning(self):
        from repro.core import ExecMode, ExecPlan, TallyServer, \
            connect_runtime
        import numpy as np
        from repro.ptx.library import vector_add
        from repro.runtime import FatBinary

        injector = FaultInjector(FaultConfig(seed=1,
                                             transform_fail_rate=1.0))
        server = TallyServer(best_effort_plan=ExecPlan(ExecMode.PTB),
                             faults=injector)
        rt = connect_runtime(server, "be")
        rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        n = 64
        x = np.arange(n, dtype=np.float64)
        bx, by, out = rt.malloc(n * 8), rt.malloc(n * 8), rt.malloc(n * 8)
        rt.memcpy_h2d(bx, x)
        rt.memcpy_h2d(by, np.ones(n))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rt.launch_kernel("vector_add", (4,), (16,),
                             {"x": bx, "y": by, "out": out, "n": n})
        fallbacks = [w for w in caught
                     if issubclass(w.category, TransformFallback)]
        assert fallbacks  # ptb -> sliced -> original, warning per rung
        np.testing.assert_array_equal(rt.memcpy_d2h(out, n), x + 1)
        assert server.transformer.fallbacks >= 2
