"""Retry-storm chaos scenario: the resilience layer must bound what an
unbounded retry loop turns into a metastable collapse."""

from dataclasses import replace

import pytest

from repro.errors import HarnessError
from repro.faults import StormConfig, run_storm, run_storm_sweep, \
    storm_pair
from repro.virt import ResilienceConfig


def _pair(**overrides):
    raw, safe = storm_pair(StormConfig(check=True, **overrides))
    return raw, safe


class TestConfig:
    def test_validation(self):
        with pytest.raises(HarnessError):
            StormConfig(clients=0)
        with pytest.raises(HarnessError):
            StormConfig(capacity=0.0)
        with pytest.raises(HarnessError):
            StormConfig(degrade_start=3.0, degrade_end=2.0)
        with pytest.raises(HarnessError):
            StormConfig(degrade_end=99.0)
        with pytest.raises(HarnessError):
            StormConfig(slo=0.0)

    def test_pair_shares_everything_but_the_layer(self):
        raw, safe = _pair()
        assert raw.resilience is None
        assert safe.resilience == ResilienceConfig()
        assert replace(raw, resilience=None, label="") == \
            replace(safe, resilience=None, label="")


class TestUnboundedStorm:
    def test_amplification_exceeds_two(self):
        raw, _ = _pair()
        result = run_storm(raw)
        assert result.amplification > 2.0
        assert result.overload.sheds == {}  # nothing refused cheaply

    def test_collapse_outlives_the_fault(self):
        """The metastability signature: the SLO stays broken after the
        degrade window ends, because amplified load built a backlog
        far larger than the window itself."""
        raw, _ = _pair()
        result = run_storm(raw)
        assert result.attainment_before == 1.0
        assert result.attainment_after < 0.5
        assert result.peak_backlog > \
            (raw.degrade_end - raw.degrade_start)


class TestResilientStorm:
    def test_amplification_bounded(self):
        _, safe = _pair()
        result = run_storm(safe)
        assert result.amplification <= 1.5

    def test_post_fault_attainment_recovers(self):
        raw, safe = _pair()
        bounded = run_storm(safe)
        unbounded = run_storm(raw)
        assert bounded.attainment_after >= \
            0.95 * bounded.attainment_before
        assert bounded.attainment_after > unbounded.attainment_after
        assert bounded.peak_backlog < unbounded.peak_backlog / 10

    def test_breakers_open_and_recover(self):
        _, safe = _pair()
        result = run_storm(safe)
        overload = result.overload
        assert overload.sheds.get("breaker", 0) > 0
        assert overload.sheds.get("retry-budget", 0) > 0
        timeline = overload.breaker_timeline
        assert timeline[0].from_state == "closed"
        assert timeline[0].to_state == "open"
        # every breaker that opened closed again inside the run
        assert 0 < overload.time_to_recover < float("inf")

    def test_conservation_audited(self):
        _, safe = _pair()
        result = run_storm(safe)
        assert result.invariant_checks == safe.clients
        # every issued call ended as exactly one success or failure
        assert result.successes + result.failures > 0


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        raw, safe = _pair()
        for config in (raw, safe):
            assert repr(run_storm(config)) == repr(run_storm(config))

    def test_parallel_sweep_matches_serial(self):
        configs = list(_pair())
        serial = run_storm_sweep(configs, jobs=1)
        parallel = run_storm_sweep(configs, jobs=2)
        assert [repr(r) for r in serial] == [repr(r) for r in parallel]

    def test_seed_changes_the_run(self):
        raw0, _ = _pair(seed=0)
        raw1, _ = _pair(seed=1)
        assert repr(run_storm(raw0)) != repr(run_storm(raw1))
