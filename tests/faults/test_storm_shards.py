"""Sharded retry-storm: deterministic merge, process parity, tracing."""

from dataclasses import replace

import pytest

from repro.errors import HarnessError
from repro.faults.storm import StormConfig, run_storm, storm_pair
from repro.metrics import OverloadReport
from repro.trace import Tracer

_BASE = StormConfig(clients=8, duration=4.0, degrade_start=1.0,
                    degrade_end=2.0, check=True)


def test_shards_must_be_positive():
    with pytest.raises(HarnessError):
        StormConfig(shards=0)


@pytest.mark.parametrize("resilient", [False, True])
def test_sharded_cells_are_process_parallel_bit_identical(resilient):
    unbounded, bounded = storm_pair(_BASE)
    config = replace(bounded if resilient else unbounded, shards=4)
    serial = run_storm(config)
    parallel = run_storm(config, jobs=4)
    assert repr(serial) == repr(parallel)


def test_single_shard_merge_is_identity():
    """shards=1 goes through the same merge and must look like a plain
    single-server run: one cell, counters passed through."""
    result = run_storm(replace(_BASE, shards=1))
    assert result.successes + result.failures > 0
    assert result.invariant_checks > 0
    merged = OverloadReport.merged([result.overload])
    assert merged == result.overload


def test_merged_overload_report_sums_and_reorders():
    a = OverloadReport(fresh_calls=10, retries=10, amplification=2.0,
                       sheds={"breaker": 3})
    b = OverloadReport(fresh_calls=30, retries=10, amplification=4 / 3,
                       sheds={"retry-budget": 2, "breaker": 1})
    merged = OverloadReport.merged([a, b])
    assert merged.fresh_calls == 40
    assert merged.retries == 20
    assert merged.amplification == pytest.approx(1.5)
    # canonical cause order, independent of input order
    assert list(merged.sheds) == ["retry-budget", "breaker"]
    assert merged.sheds == {"retry-budget": 2, "breaker": 4}
    assert OverloadReport.merged([b, a]).sheds == merged.sheds


def test_sharded_trace_commits_in_timestamp_order():
    # the resilience layer is what emits trace events (sheds, budget
    # exhaustion); the unbounded storm is silent
    _, resilient = storm_pair(_BASE)
    config = replace(resilient, shards=3, check=False)
    serial_tracer = Tracer()
    run_storm(config, tracer=serial_tracer)
    parallel_tracer = Tracer()
    run_storm(config, jobs=3, tracer=parallel_tracer)
    assert len(serial_tracer.events) > 0
    stamps = [e.ts for e in serial_tracer.events]
    assert stamps == sorted(stamps)
    assert [repr(e) for e in serial_tracer.events] == \
        [repr(e) for e in parallel_tracer.events]


def test_shard_count_changes_physics_but_conserves_requests():
    """Splitting capacity is a different scenario (same aggregate
    capacity, partitioned queues) — but every fresh call still ends as
    exactly one success or counted failure (the audit runs per cell)."""
    whole = run_storm(_BASE)
    split = run_storm(replace(_BASE, shards=2))
    assert split.invariant_checks > 0
    assert whole.successes + whole.failures > 0
    assert split.successes + split.failures > 0
