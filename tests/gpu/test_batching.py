"""Interval batching on the device hot path.

The device replaces per-iteration / per-wave events with one
settlement event per identical-interval batch (``_Batch``), truncated
whenever the world changes (arrival, preemption, kill, colocation
transition).  These tests pin down the two guarantees the optimization
must keep: **far fewer events** for solo launches, and **identical
timing** to the unbatched model — verified against the closed-form
durations and with the invariant checker auditing every event.

Also here: the regression test for the occupancy-cache bug where
``_capacity`` was keyed on ``threads_per_block`` alone, so two kernels
with equal block width but different shared-memory footprints aliased
to one (wrong) capacity.
"""

import math

import pytest

from repro.check import InvariantChecker
from repro.gpu import (
    A100_SXM4_40GB,
    DeviceLaunch,
    EventLoop,
    GPUDevice,
    KernelDescriptor,
    LaunchConfig,
    LaunchKind,
    LaunchStatus,
)

SPEC = A100_SXM4_40GB


def checked_device():
    engine = EventLoop()
    device = GPUDevice(SPEC, engine, check=InvariantChecker())
    return device, engine


class TestWaveChainBatching:
    def test_solo_original_launch_matches_analytic_duration(self):
        device, engine = checked_device()
        descriptor = KernelDescriptor("k", num_blocks=20_000,
                                      threads_per_block=256,
                                      block_duration=50e-6)
        done = []
        device.submit(DeviceLaunch(descriptor, client_id="a",
                                   on_complete=lambda l: done.append(engine.now)))
        engine.run()
        expected = SPEC.kernel_launch_overhead + descriptor.duration(SPEC)
        assert done == [pytest.approx(expected, rel=1e-9)]

    def test_solo_original_launch_uses_one_event_per_chain_not_per_wave(self):
        device, engine = checked_device()
        capacity = SPEC.concurrent_blocks(256)
        waves = 40
        descriptor = KernelDescriptor("k", num_blocks=waves * capacity,
                                      threads_per_block=256,
                                      block_duration=50e-6)
        device.submit(DeviceLaunch(descriptor, client_id="a"))
        engine.run()
        # Unbatched, the run needs one completion event per wave (40+);
        # the wave chain settles them in O(1) events.
        assert engine.events_processed < waves // 2

    def test_solo_ptb_launch_matches_analytic_duration(self):
        device, engine = checked_device()
        descriptor = KernelDescriptor("k", num_blocks=30_000,
                                      threads_per_block=256,
                                      block_duration=20e-6)
        workers = 500
        done = []
        device.submit(DeviceLaunch(
            descriptor, LaunchConfig(LaunchKind.PTB, workers=workers),
            client_id="a", on_complete=lambda l: done.append(engine.now),
        ))
        engine.run()
        expected = (SPEC.kernel_launch_overhead
                    + descriptor.ptb_duration(workers))
        assert done == [pytest.approx(expected, rel=1e-9)]

    def test_solo_ptb_launch_batches_iterations(self):
        device, engine = checked_device()
        descriptor = KernelDescriptor("k", num_blocks=30_000,
                                      threads_per_block=256,
                                      block_duration=20e-6)
        device.submit(DeviceLaunch(
            descriptor, LaunchConfig(LaunchKind.PTB, workers=500),
            client_id="a",
        ))
        engine.run()
        iterations = math.ceil(30_000 / 500)
        assert engine.events_processed < iterations

    def test_arrival_truncates_chain_and_preserves_accounting(self):
        # A competitor arriving mid-chain forces eager settlement; the
        # checker audits conservation at every event thereafter.
        device, engine = checked_device()
        first = DeviceLaunch(
            KernelDescriptor("be", num_blocks=40_000,
                             threads_per_block=256, block_duration=50e-6),
            client_id="be", priority=1,
        )
        device.submit(first)
        second = DeviceLaunch(
            KernelDescriptor("hp", num_blocks=600, threads_per_block=128,
                             block_duration=30e-6),
            client_id="hp", priority=0,
        )
        # Arrive strictly inside a wave interval, not on a boundary.
        engine.schedule(50e-6 * 3.5, lambda: device.submit(second))
        engine.run()
        assert first.status is LaunchStatus.COMPLETED
        assert second.status is LaunchStatus.COMPLETED
        assert device.check.violations == []
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots

    def test_preempt_mid_chain_stops_at_next_boundary(self):
        device, engine = checked_device()
        launch = DeviceLaunch(
            KernelDescriptor("be", num_blocks=40_000,
                             threads_per_block=256, block_duration=50e-6),
            LaunchConfig(LaunchKind.PTB, workers=400), client_id="be",
        )
        device.submit(launch)
        preempt_at = 1.234e-3
        engine.schedule(preempt_at, lambda: device.preempt(launch))
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        # The in-flight iteration finishes; the ack lands within one
        # iteration (block duration + PTB overhead) of the request.
        iter_cost = 50e-6 + 2e-6
        assert preempt_at <= engine.now <= preempt_at + iter_cost + 1e-9
        assert device.check.violations == []

    def test_kill_mid_chain_reclaims_resources(self):
        device, engine = checked_device()
        launch = DeviceLaunch(
            KernelDescriptor("be", num_blocks=40_000,
                             threads_per_block=256, block_duration=50e-6),
            client_id="be",
        )
        device.submit(launch)
        engine.schedule(1.111e-3, lambda: device.kill(launch))
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        assert launch.killed
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots
        assert device.check.violations == []
        total = (launch.blocks_done + launch.blocks_inflight
                 + launch.blocks_to_start + launch.blocks_killed)
        assert total == launch.total_blocks

    def test_chain_results_match_two_competing_launches(self):
        # Two clients colocated from t=0: chains must not form (neither
        # is alone), and the run stays invariant-clean to completion.
        device, engine = checked_device()
        launches = [
            DeviceLaunch(KernelDescriptor(f"k{i}", num_blocks=10_000,
                                          threads_per_block=256,
                                          block_duration=40e-6),
                         client_id=f"c{i}")
            for i in range(2)
        ]
        for launch in launches:
            device.submit(launch)
        engine.run()
        assert all(l.status is LaunchStatus.COMPLETED for l in launches)
        assert device.check.violations == []


class TestCapacityCacheRegression:
    """``_capacity`` must key on the full occupancy tuple.

    Regression: the cache was keyed on ``threads_per_block`` alone, so
    after a zero-shared-memory kernel warmed the cache, a kernel with
    the same block width but a large shared-memory footprint read the
    uncapped capacity back out.
    """

    def test_shared_memory_does_not_alias_cache(self):
        device = GPUDevice(SPEC, EventLoop())
        plain = device._capacity(256)
        heavy = device._capacity(256, 65536)
        assert plain == SPEC.concurrent_blocks(256)
        assert heavy == SPEC.concurrent_blocks(256, 65536)
        assert heavy < plain
        # Both orders: warm with the heavy kernel first, then plain.
        device2 = GPUDevice(SPEC, EventLoop())
        assert device2._capacity(256, 65536) == heavy
        assert device2._capacity(256) == plain

    def test_cache_hits_return_consistent_values(self):
        device = GPUDevice(SPEC, EventLoop())
        for _ in range(3):
            assert device._capacity(128, 32768) == \
                SPEC.concurrent_blocks(128, 32768)

    def test_mixed_footprint_kernels_keep_distinct_cache_entries(self):
        # End to end: running a plain and a shared-memory-heavy kernel
        # through one device leaves two cache entries with the right
        # occupancy each (under the old key the second lookup aliased).
        engine = EventLoop()
        device = GPUDevice(SPEC, engine, check=InvariantChecker())
        plain = DeviceLaunch(
            KernelDescriptor("plain", num_blocks=4000,
                             threads_per_block=256, block_duration=40e-6),
            client_id="a",
        )
        heavy = DeviceLaunch(
            KernelDescriptor("smem", num_blocks=800,
                             threads_per_block=256, block_duration=40e-6,
                             shared_mem_per_block=65536),
            client_id="b",
        )
        device.submit(plain)
        device.submit(heavy)
        engine.run()
        assert plain.status is LaunchStatus.COMPLETED
        assert heavy.status is LaunchStatus.COMPLETED
        assert device._capacity_cache[(256, 0)] == \
            SPEC.concurrent_blocks(256)
        assert device._capacity_cache[(256, 65536)] == \
            SPEC.concurrent_blocks(256, 65536)
