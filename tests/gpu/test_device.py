"""Unit tests for the discrete-event GPU device model."""

import pytest

from repro.errors import GPUSimError
from repro.gpu import (
    A100_SXM4_40GB,
    DeviceLaunch,
    EventLoop,
    GPUDevice,
    KernelDescriptor,
    LaunchConfig,
    LaunchKind,
    LaunchStatus,
)
from repro.gpu.kernel import PTB_ITERATION_OVERHEAD

SPEC = A100_SXM4_40GB


def make_device():
    engine = EventLoop()
    return GPUDevice(SPEC, engine), engine


def kernel(blocks=1000, tpb=256, bd=100e-6, **kw):
    return KernelDescriptor("k", num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd, **kw)


class TestOriginalLaunches:
    def test_single_kernel_runs_in_waves(self):
        device, engine = make_device()
        k = kernel()  # 1000 blocks, capacity 864 -> 2 waves
        done = []
        device.submit(DeviceLaunch(k, client_id="a",
                                   on_complete=lambda l: done.append(engine.now)))
        engine.run()
        # launch overhead + 2 waves of 100us
        assert done[0] == pytest.approx(SPEC.kernel_launch_overhead + 200e-6)

    def test_completion_status_and_accounting(self):
        device, engine = make_device()
        k = kernel(blocks=10)
        launch = DeviceLaunch(k, client_id="a")
        device.submit(launch)
        engine.run()
        assert launch.status is LaunchStatus.COMPLETED
        assert launch.blocks_done == 10
        assert launch.tasks_remaining == 0
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots

    def test_double_submit_rejected(self):
        device, engine = make_device()
        launch = DeviceLaunch(kernel(blocks=1), client_id="a")
        device.submit(launch)
        with pytest.raises(GPUSimError):
            device.submit(launch)

    def test_priority_dispatch_order(self):
        """A high-priority launch takes freed slots before a queued
        best-effort launch, even if it arrived later."""
        device, engine = make_device()
        big = kernel(blocks=864 * 4, bd=1e-3)
        small = kernel(blocks=100, bd=50e-6)
        done = {}
        device.submit(DeviceLaunch(big, client_id="be", priority=1,
                                   on_complete=lambda l: done.setdefault("be", engine.now)))
        # Two competitors arrive while the device is full.
        engine.schedule(0.5e-3, lambda: device.submit(
            DeviceLaunch(small, client_id="hp", priority=0,
                         on_complete=lambda l: done.setdefault("hp", engine.now))))
        engine.run()
        assert done["hp"] < done["be"]

    def test_blocks_launch_subrange(self):
        device, engine = make_device()
        k = kernel(blocks=1000)
        launch = DeviceLaunch(k, client_id="a", blocks=100, block_offset=50)
        device.submit(launch)
        engine.run()
        assert launch.blocks_done == 100
        assert launch.total_blocks == 100

    def test_launch_requires_positive_blocks(self):
        with pytest.raises(GPUSimError):
            DeviceLaunch(kernel(), client_id="a", blocks=0)

    def test_colocation_slowdown_applied(self):
        engine = EventLoop()
        device = GPUDevice(SPEC, engine, colocation_slowdown=2.0)
        k_small = kernel(blocks=10, bd=100e-6)
        times = {}
        # Long-running launch from client A occupies the device.
        device.submit(DeviceLaunch(kernel(blocks=100, bd=10e-3),
                                   client_id="a"))
        engine.schedule(1e-3, lambda: device.submit(DeviceLaunch(
            k_small, client_id="b",
            on_complete=lambda l: times.__setitem__("b", engine.now))))
        engine.run()
        # Client b's block ran while colocated: 100us * 2.0 slowdown.
        start = 1e-3 + SPEC.kernel_launch_overhead
        assert times["b"] == pytest.approx(start + 200e-6)

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(GPUSimError):
            GPUDevice(SPEC, EventLoop(), colocation_slowdown=0.9)

    def test_utilization_tracks_busy_time(self):
        device, engine = make_device()
        k = kernel(blocks=SPEC.concurrent_blocks(256), bd=1e-3)
        device.submit(DeviceLaunch(k, client_id="a"), launch_overhead=0.0)
        engine.run()
        util = device.utilization()
        expected_busy = (864 * 256) / SPEC.total_threads
        assert util == pytest.approx(expected_busy, rel=0.01)


class TestOriginalPreemption:
    def test_preempt_cancels_unstarted_blocks(self):
        device, engine = make_device()
        k = kernel(blocks=864 * 4, bd=1e-3)
        launch = DeviceLaunch(k, client_id="a")
        device.submit(launch)
        engine.schedule(1.5e-3, lambda: device.preempt(launch))
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        assert 0 < launch.blocks_done < k.num_blocks
        assert launch.tasks_remaining == k.num_blocks - launch.blocks_done

    def test_preempt_before_arrival(self):
        device, engine = make_device()
        launch = DeviceLaunch(kernel(blocks=10), client_id="a")
        device.submit(launch)
        device.preempt(launch)  # before the launch overhead elapses
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        assert launch.blocks_done == 0

    def test_preempt_after_done_is_noop(self):
        device, engine = make_device()
        launch = DeviceLaunch(kernel(blocks=10), client_id="a")
        device.submit(launch)
        engine.run()
        device.preempt(launch)
        assert launch.status is LaunchStatus.COMPLETED


class TestPTBLaunches:
    def test_ptb_completes_all_tasks(self):
        device, engine = make_device()
        k = kernel(blocks=1000, bd=50e-6)
        launch = DeviceLaunch(k, LaunchConfig(LaunchKind.PTB, workers=100),
                              client_id="a")
        device.submit(launch)
        engine.run()
        assert launch.status is LaunchStatus.COMPLETED
        assert launch.tasks_done == 1000

    def test_ptb_duration_matches_model(self):
        device, engine = make_device()
        k = kernel(blocks=1000, bd=50e-6, ptb_overhead_fraction=0.04)
        done = []
        launch = DeviceLaunch(k, LaunchConfig(LaunchKind.PTB, workers=100),
                              client_id="a",
                              on_complete=lambda l: done.append(engine.now))
        device.submit(launch)
        engine.run()
        iters = 10  # ceil(1000 / 100)
        expected = (SPEC.kernel_launch_overhead
                    + iters * (50e-6 * 1.04 + PTB_ITERATION_OVERHEAD))
        assert done[0] == pytest.approx(expected)

    def test_ptb_preemption_releases_within_one_iteration(self):
        device, engine = make_device()
        k = kernel(blocks=10_000, bd=100e-6)
        launch = DeviceLaunch(k, LaunchConfig(LaunchKind.PTB, workers=200),
                              client_id="a")
        device.submit(launch)
        preempt_at = 2e-3
        released = []
        engine.schedule(preempt_at, lambda: device.preempt(launch))
        launch.on_complete = lambda l: released.append(engine.now)
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        turnaround = released[0] - preempt_at
        assert turnaround <= k.ptb_iteration_duration() * 1.01

    def test_ptb_resume_from_counter(self):
        device, engine = make_device()
        k = kernel(blocks=1000, bd=50e-6)
        launch = DeviceLaunch(k, LaunchConfig(LaunchKind.PTB, workers=100),
                              client_id="a")
        device.submit(launch)
        engine.schedule(0.2e-3, lambda: device.preempt(launch))
        engine.run()
        remaining = launch.tasks_remaining
        assert 0 < remaining < 1000
        resume = DeviceLaunch(k, LaunchConfig(LaunchKind.PTB, workers=100),
                              client_id="a", blocks=remaining)
        device.submit(resume)
        engine.run()
        assert resume.status is LaunchStatus.COMPLETED
        assert launch.tasks_done + resume.tasks_done == 1000

    def test_ptb_workers_capped_by_tasks(self):
        launch = DeviceLaunch(kernel(blocks=5),
                              LaunchConfig(LaunchKind.PTB, workers=100),
                              client_id="a")
        assert launch.blocks_to_start == 5


class TestFairSharing:
    def test_same_priority_launches_share_slots(self):
        """Two saturating same-priority launches interleave rather than
        serialize (MPS spatial sharing)."""
        device, engine = make_device()
        k = kernel(blocks=864 * 4, bd=1e-3)
        done = {}
        device.submit(DeviceLaunch(k, client_id="a",
                                   on_complete=lambda l: done.__setitem__("a", engine.now)))
        device.submit(DeviceLaunch(k, client_id="b",
                                   on_complete=lambda l: done.__setitem__("b", engine.now)))
        engine.run()
        # With strict FIFO, b would finish ~4ms after a; with fair
        # sharing their finish times are close (within ~two waves).
        assert abs(done["a"] - done["b"]) <= 2.5e-3
