"""Edge cases around the submission-delay window and partial dispatch.

Every launch spends ``kernel_launch_overhead`` between :meth:`submit`
and arriving on the device.  Preemption, kill, and busy-polling during
that window are the corners this file pins down, along with PTB
launches forced to dispatch their workers in several partial batches.
All scenarios run under the invariant checker so a clean pass also
certifies the accounting on these paths.
"""

import math

from repro.check import InvariantChecker
from repro.gpu import (
    A100_SXM4_40GB,
    DeviceLaunch,
    EventLoop,
    GPUDevice,
    KernelDescriptor,
    LaunchConfig,
    LaunchKind,
    LaunchStatus,
)

SPEC = A100_SXM4_40GB
OVERHEAD = SPEC.kernel_launch_overhead


def checked_device():
    engine = EventLoop()
    checker = InvariantChecker()
    device = GPUDevice(SPEC, engine, check=checker)
    return device, engine, checker


def kernel(name="k", blocks=2000, bd=50e-6, tpb=256):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


class TestPreemptBeforeArrival:
    def test_preempt_during_submission_delay(self):
        """Preempting a launch that has not yet arrived retires it on
        arrival with zero progress, leaving the device pristine."""
        device, engine, checker = checked_device()
        launch = DeviceLaunch(kernel(), client_id="a")
        device.submit(launch)
        # Half-way through the submission delay: not yet arrived.
        engine.schedule(OVERHEAD / 2, lambda: device.preempt(launch))
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        assert launch.blocks_done == 0
        assert launch.blocks_inflight == 0
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots
        assert checker.violations == []

    def test_on_complete_fires_for_preempted_arrival(self):
        device, engine, _checker = checked_device()
        seen = []
        launch = DeviceLaunch(kernel(), client_id="a",
                              on_complete=seen.append)
        device.submit(launch)
        engine.schedule(OVERHEAD / 2, lambda: device.preempt(launch))
        engine.run()
        assert seen == [launch]


class TestKillDuringSubmissionDelay:
    def test_kill_before_arrival(self):
        """kill() on a launch in its submission delay must not finalize
        twice or leak resources — _arrive retires it."""
        device, engine, checker = checked_device()
        launch = DeviceLaunch(kernel(), client_id="a")
        device.submit(launch)
        engine.schedule(OVERHEAD / 2, lambda: device.kill(launch))
        engine.run()
        assert launch.status is LaunchStatus.PREEMPTED
        assert launch.killed
        assert launch.blocks_done == 0
        assert device.threads_free == SPEC.total_threads
        assert checker.violations == []

    def test_kill_is_idempotent_after_retirement(self):
        device, engine, checker = checked_device()
        launch = DeviceLaunch(kernel(), client_id="a")
        device.submit(launch)
        engine.schedule(OVERHEAD / 2, lambda: device.kill(launch))
        engine.run()
        device.kill(launch)  # already done: must be a no-op
        assert launch.blocks_killed == 0
        assert checker.violations == []


class TestBusyForClient:
    def test_busy_during_submission_window(self):
        """The fix under test: a launch between submit() and arrival
        counts as busy, so policies cannot double-dispatch during the
        launch-overhead window."""
        device, engine, _checker = checked_device()
        device.submit(DeviceLaunch(kernel(), client_id="a"))
        # Immediately after submit: not yet resident, but busy.
        assert device.busy_for_client("a")
        assert not device.busy_for_client("b")
        observed = []
        engine.schedule(OVERHEAD / 2,
                        lambda: observed.append(device.busy_for_client("a")))
        engine.run()
        assert observed == [True]

    def test_idle_after_completion(self):
        device, engine, _checker = checked_device()
        device.submit(DeviceLaunch(kernel(), client_id="a"))
        engine.run()
        assert not device.busy_for_client("a")

    def test_busy_while_resident(self):
        device, engine, _checker = checked_device()
        device.submit(DeviceLaunch(kernel(blocks=30_000), client_id="a"))
        observed = []
        engine.schedule(1e-3,
                        lambda: observed.append(device.busy_for_client("a")))
        engine.run()
        assert observed == [True]


class TestPtbPartialBatches:
    def test_workers_split_across_batches(self):
        """A PTB launch arriving on a mostly-occupied device dispatches
        its workers in several partial batches as slots free up, and
        still completes every logical block exactly once."""
        device, engine, checker = checked_device()
        capacity = SPEC.concurrent_blocks(256)
        # Fill the device with a long ORIGINAL kernel first.
        hog = DeviceLaunch(kernel("hog", blocks=capacity, bd=200e-6),
                           client_id="hog")
        device.submit(hog)
        # PTB launch wants more workers than will ever be free at once.
        workers = capacity // 2
        ptb = DeviceLaunch(
            kernel("ptb", blocks=10_000, bd=20e-6),
            LaunchConfig(LaunchKind.PTB, workers=workers),
            client_id="ptb",
        )
        engine.schedule(OVERHEAD, lambda: device.submit(ptb))
        engine.run()
        assert hog.status is LaunchStatus.COMPLETED
        assert ptb.status is LaunchStatus.COMPLETED
        assert ptb.tasks_done == 10_000
        assert ptb.blocks_done == 10_000
        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots
        assert checker.violations == []

    def test_partial_batch_preemption_keeps_progress(self):
        device, engine, checker = checked_device()
        ptb = DeviceLaunch(
            kernel("ptb", blocks=50_000, bd=100e-6),
            LaunchConfig(LaunchKind.PTB, workers=400),
            client_id="ptb",
        )
        device.submit(ptb)
        engine.schedule(2e-3, lambda: device.preempt(ptb))
        engine.run()
        assert ptb.status is LaunchStatus.PREEMPTED
        assert 0 < ptb.tasks_done < 50_000
        # Progress is exact: a restart from tasks_done re-runs the rest.
        assert ptb.tasks_done == ptb.blocks_done
        assert device.threads_free == SPEC.total_threads
        assert checker.violations == []

    def test_arrival_time_recorded(self):
        device, engine, _checker = checked_device()
        launch = DeviceLaunch(kernel(), client_id="a")
        device.submit(launch)
        assert math.isnan(launch.arrived_at)
        engine.run()
        assert launch.arrived_at == OVERHEAD
