"""Property-based tests of the GPU device model's invariants.

Whatever sequence of launches, preemptions, and kills hits the device,
three invariants must hold once the event queue drains:

* all thread and slot resources are returned;
* every launch reaches a terminal status, and completed launches did
  exactly their block count;
* simulated time only moves forward and utilization stays in [0, 1].
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100_SXM4_40GB,
    DeviceLaunch,
    EventLoop,
    GPUDevice,
    KernelDescriptor,
    LaunchConfig,
    LaunchKind,
    LaunchStatus,
)

SPEC = A100_SXM4_40GB

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def launch_plan(draw):
    """A random schedule of launches plus preempt/kill actions."""
    n = draw(st.integers(min_value=1, max_value=8))
    plan = []
    for i in range(n):
        blocks = draw(st.integers(min_value=1, max_value=5000))
        tpb = draw(st.sampled_from([64, 128, 256, 512, 1024]))
        bd = draw(st.floats(min_value=5e-6, max_value=2e-3))
        ptb = draw(st.booleans())
        workers = draw(st.integers(min_value=1, max_value=400))
        submit_at = draw(st.floats(min_value=0.0, max_value=5e-3))
        action = draw(st.sampled_from(["none", "preempt", "kill"]))
        action_at = draw(st.floats(min_value=0.0, max_value=8e-3))
        priority = draw(st.integers(min_value=0, max_value=2))
        plan.append((blocks, tpb, bd, ptb, workers, submit_at, action,
                     action_at, priority))
    return plan


class TestDeviceInvariants:
    @given(launch_plan())
    @_settings
    def test_resources_conserved_and_launches_terminal(self, plan):
        engine = EventLoop()
        device = GPUDevice(SPEC, engine)
        launches = []
        for (blocks, tpb, bd, ptb, workers, submit_at, action, action_at,
             priority) in plan:
            kernel = KernelDescriptor(f"k{len(launches)}", blocks, tpb, bd)
            config = (LaunchConfig(LaunchKind.PTB, workers=workers)
                      if ptb else LaunchConfig())
            launch = DeviceLaunch(kernel, config, client_id=f"c{priority}",
                                  priority=priority)
            launches.append(launch)
            engine.schedule_at(submit_at, lambda l=launch: device.submit(l))
            if action == "preempt":
                engine.schedule_at(max(action_at, submit_at),
                                   lambda l=launch: device.preempt(l))
            elif action == "kill":
                engine.schedule_at(max(action_at, submit_at),
                                   lambda l=launch: device.kill(l))
        engine.run(max_events=2_000_000)

        assert device.threads_free == SPEC.total_threads
        assert device.slots_free == SPEC.total_block_slots
        assert not device.resident_launches
        assert 0.0 <= device.utilization() <= 1.0

        for launch in launches:
            assert launch.done, launch
            assert launch.blocks_inflight == 0
            if launch.status is LaunchStatus.COMPLETED:
                assert launch.tasks_remaining == 0
            else:
                assert launch.preempt_requested

    @given(launch_plan())
    @_settings
    def test_progress_accounting_is_exact(self, plan):
        """COMPLETED launches execute exactly their logical blocks;
        PREEMPTED ones never exceed them."""
        engine = EventLoop()
        device = GPUDevice(SPEC, engine)
        launches = []
        for (blocks, tpb, bd, ptb, workers, submit_at, action, action_at,
             priority) in plan:
            kernel = KernelDescriptor(f"k{len(launches)}", blocks, tpb, bd)
            config = (LaunchConfig(LaunchKind.PTB, workers=workers)
                      if ptb else LaunchConfig())
            launch = DeviceLaunch(kernel, config, client_id="c")
            launches.append(launch)
            engine.schedule_at(submit_at, lambda l=launch: device.submit(l))
            if action == "preempt":
                engine.schedule_at(max(action_at, submit_at),
                                   lambda l=launch: device.preempt(l))
        engine.run(max_events=2_000_000)

        for launch in launches:
            total = launch.total_blocks
            if launch.status is LaunchStatus.COMPLETED:
                if launch.is_ptb:
                    assert launch.tasks_done == total
                else:
                    assert launch.blocks_done == total
            else:
                assert 0 <= launch.tasks_done <= total
                assert 0 <= launch.blocks_done <= total
