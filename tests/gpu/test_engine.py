"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import GPUSimError
from repro.gpu import EventLoop


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(3.0, lambda: log.append("c"))
        loop.schedule(1.0, lambda: log.append("a"))
        loop.schedule(2.0, lambda: log.append("b"))
        loop.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append(1))
        loop.schedule(1.0, lambda: log.append(2))
        loop.schedule(1.0, lambda: log.append(3))
        loop.run()
        assert log == [1, 2, 3]

    def test_clock_advances_to_event_times(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        log = []
        ev = loop.schedule(1.0, lambda: log.append("x"))
        ev.cancel()
        loop.run()
        assert log == []

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append(1))
        loop.schedule(2.0, lambda: log.append(2))
        loop.schedule(3.0, lambda: log.append(3))
        loop.run_until(2.0)
        assert log == [1, 2]
        assert loop.now == 2.0

    def test_run_until_advances_clock_past_last_event(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run_until(10.0)
        assert loop.now == 10.0

    def test_events_scheduled_during_run_fire(self):
        loop = EventLoop()
        log = []

        def first():
            log.append("first")
            loop.schedule(1.0, lambda: log.append("nested"))

        loop.schedule(1.0, first)
        loop.run()
        assert log == ["first", "nested"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(GPUSimError):
            loop.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(GPUSimError):
            loop.schedule_at(1.0, lambda: None)

    def test_call_soon_runs_after_pending_same_time_events(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append("a"))

        def hook():
            log.append("hook")
            loop.call_soon(lambda: log.append("soon"))

        loop.schedule(1.0, hook)
        loop.schedule(1.0, lambda: log.append("b"))
        loop.run()
        assert log == ["a", "hook", "b", "soon"]

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        ev.cancel()
        assert loop.peek_time() == 2.0

    def test_runaway_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(0.001, reschedule)

        loop.schedule(0.001, reschedule)
        with pytest.raises(GPUSimError, match="exceeded"):
            loop.run(max_events=100)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i + 1), lambda: None)
        loop.run()
        assert loop.events_processed == 5


class TestPendingCount:
    """``pending`` counts *live* events; cancelled ones are excluded
    immediately, not only once the heap pops them."""

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        events = [loop.schedule(float(i + 1), lambda: None)
                  for i in range(10)]
        assert loop.pending == 10
        for event in events[:4]:
            event.cancel()
        assert loop.pending == 6

    def test_double_cancel_counts_once(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert loop.pending == 1

    def test_pending_drains_to_zero(self):
        loop = EventLoop()
        kept = [loop.schedule(float(i + 1), lambda: None) for i in range(6)]
        for event in kept[::2]:
            event.cancel()
        loop.run()
        assert loop.pending == 0

    def test_peek_time_keeps_count_consistent(self):
        loop = EventLoop()
        first = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        first.cancel()
        # peek_time pops the cancelled head; pending must not go stale.
        assert loop.peek_time() == 2.0
        assert loop.pending == 1

    def test_step_skips_cancelled_and_updates_count(self):
        loop = EventLoop()
        first = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        first.cancel()
        assert loop.step() is True
        assert loop.now == 2.0
        assert loop.pending == 0


class TestHeapCompaction:
    """Mass cancellation compacts the heap in place so long-running
    simulations with churny timers don't accumulate dead entries."""

    def test_compaction_shrinks_heap(self):
        loop = EventLoop()
        threshold = EventLoop.COMPACT_THRESHOLD
        doomed = [loop.schedule(float(i + 1), lambda: None)
                  for i in range(2 * threshold)]
        survivors = [loop.schedule(1000.0 + i, lambda: None)
                     for i in range(3)]
        for event in doomed:
            event.cancel()
        # A sweep ran: most dead entries are gone (a sub-threshold tail
        # of cancellations after the last sweep may linger until popped).
        assert len(loop._heap) < 2 * threshold
        assert loop.pending == len(survivors)

    def test_compaction_preserves_order_and_fires_survivors(self):
        loop = EventLoop()
        threshold = EventLoop.COMPACT_THRESHOLD
        fired = []
        doomed = []
        for i in range(2 * threshold):
            doomed.append(
                loop.schedule(float(i + 1), lambda: fired.append("doomed")))
        survivors = []
        for i in range(5):
            survivors.append(
                loop.schedule(0.5 + i, lambda i=i: fired.append(i)))
        for event in doomed:
            event.cancel()
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_no_compaction_below_threshold(self):
        loop = EventLoop()
        events = [loop.schedule(float(i + 1), lambda: None)
                  for i in range(10)]
        for event in events[:5]:
            event.cancel()
        # Below COMPACT_THRESHOLD the dead entries stay until popped...
        assert len(loop._heap) == 10
        # ...but pending already reports the live count.
        assert loop.pending == 5
