"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import GPUSimError
from repro.gpu import EventLoop


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(3.0, lambda: log.append("c"))
        loop.schedule(1.0, lambda: log.append("a"))
        loop.schedule(2.0, lambda: log.append("b"))
        loop.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append(1))
        loop.schedule(1.0, lambda: log.append(2))
        loop.schedule(1.0, lambda: log.append(3))
        loop.run()
        assert log == [1, 2, 3]

    def test_clock_advances_to_event_times(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        log = []
        ev = loop.schedule(1.0, lambda: log.append("x"))
        ev.cancel()
        loop.run()
        assert log == []

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append(1))
        loop.schedule(2.0, lambda: log.append(2))
        loop.schedule(3.0, lambda: log.append(3))
        loop.run_until(2.0)
        assert log == [1, 2]
        assert loop.now == 2.0

    def test_run_until_advances_clock_past_last_event(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run_until(10.0)
        assert loop.now == 10.0

    def test_events_scheduled_during_run_fire(self):
        loop = EventLoop()
        log = []

        def first():
            log.append("first")
            loop.schedule(1.0, lambda: log.append("nested"))

        loop.schedule(1.0, first)
        loop.run()
        assert log == ["first", "nested"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(GPUSimError):
            loop.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(GPUSimError):
            loop.schedule_at(1.0, lambda: None)

    def test_call_soon_runs_after_pending_same_time_events(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append("a"))

        def hook():
            log.append("hook")
            loop.call_soon(lambda: log.append("soon"))

        loop.schedule(1.0, hook)
        loop.schedule(1.0, lambda: log.append("b"))
        loop.run()
        assert log == ["a", "hook", "b", "soon"]

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        ev.cancel()
        assert loop.peek_time() == 2.0

    def test_runaway_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(0.001, reschedule)

        loop.schedule(0.001, reschedule)
        with pytest.raises(GPUSimError, match="exceeded"):
            loop.run(max_events=100)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i + 1), lambda: None)
        loop.run()
        assert loop.events_processed == 5
