"""EventLoop behavior at shard boundaries (parallel-engine contract).

The time-warp engine leans on three loop properties the colocation
harness never stressed: exclusive :meth:`EventLoop.advance_to` grants
that leave boundary-time events pending, cancel-then-reschedule at
*identical* timestamps (migration freeze/thaw does exactly this), and
in-place heap compaction staying correct while a boundary is held.
Sequence numbers break every tie, so two loops fed the same schedule
calls replay in the same order — the cross-shard determinism the
bit-identity suite depends on.
"""

import pytest

from repro.errors import GPUSimError
from repro.gpu import EventLoop


def test_advance_to_is_exclusive_at_the_boundary():
    loop = EventLoop()
    ran = []
    loop.schedule_at(1.0, lambda: ran.append("a"))
    loop.schedule_at(2.0, lambda: ran.append("b"))
    assert loop.advance_to(2.0) == 1
    assert ran == ["a"]
    assert loop.now == 2.0
    assert loop.peek_time() == 2.0  # boundary event still pending
    assert loop.advance_to(2.0, inclusive=True) == 1
    assert ran == ["a", "b"]


def test_advance_to_moves_clock_past_drained_queue():
    loop = EventLoop()
    loop.schedule_at(0.5, lambda: None)
    loop.advance_to(3.0)
    assert loop.now == 3.0
    assert loop.peek_time() is None
    with pytest.raises(GPUSimError):
        loop.advance_to(2.0)  # the clock never goes backwards


def test_cancel_then_reschedule_at_identical_timestamp():
    loop = EventLoop()
    ran = []
    first = loop.schedule_at(1.0, lambda: ran.append("first"))
    loop.schedule_at(1.0, lambda: ran.append("second"))
    first.cancel()
    # freeze/thaw shape: re-arm at exactly the cancelled time
    loop.schedule_at(1.0, lambda: ran.append("rearmed"))
    loop.run_until(1.0)
    # scheduling order, not cancellation order, decides ties
    assert ran == ["second", "rearmed"]
    assert loop.events_processed == 2  # cancelled events never count


def test_seq_tiebreak_replays_identically_across_loops():
    def drive(loop: EventLoop) -> list[str]:
        ran: list[str] = []
        events = {}
        for name in ("a", "b", "c", "d"):
            events[name] = loop.schedule_at(
                2.0, lambda n=name: ran.append(n))
        events["b"].cancel()
        loop.schedule_at(2.0, lambda: ran.append("e"))
        loop.schedule_at(1.0, lambda: ran.append("early"))
        loop.run_until(2.0)
        return ran

    # two "shards" given the same schedule sequence: identical replay
    assert drive(EventLoop()) == drive(EventLoop())
    assert drive(EventLoop()) == ["early", "a", "c", "d", "e"]


def test_compaction_preserves_pending_boundary_events():
    loop = EventLoop()
    ran = []
    keep = []
    cancelled = []
    for i in range(3 * loop.COMPACT_THRESHOLD):
        t = 1.0 + i * 0.001
        if i % 3 == 0:
            keep.append(t)
            loop.schedule_at(t, lambda t=t: ran.append(t))
        else:
            cancelled.append(loop.schedule_at(t, lambda: ran.append(-1.0)))
    boundary = loop.schedule_at(5.0, lambda: ran.append(5.0))
    for event in cancelled:
        event.cancel()  # bulk cancel crosses the compaction threshold
    assert loop.pending == len(keep) + 1
    loop.advance_to(5.0)  # exclusive: the boundary event survives
    assert ran == keep
    assert loop.peek_time() == 5.0
    assert not boundary.cancelled
    loop.advance_to(5.0, inclusive=True)
    assert ran[-1] == 5.0


def test_compaction_in_heap_mode_keeps_order():
    loop = EventLoop()
    ran = []
    # out-of-order pushes force heap mode
    events = [loop.schedule_at(10.0 - i * 0.01, lambda i=i: ran.append(i))
              for i in range(3 * loop.COMPACT_THRESHOLD)]
    for event in events[::2]:
        event.cancel()
    expected = [i for i in range(len(events)) if i % 2 == 1]
    loop.run_until(10.0)
    # later-scheduled events had earlier times: reverse order runs
    assert ran == expected[::-1]
    assert loop.events_processed == len(expected)


def test_peek_time_skips_cancelled_heads_in_both_modes():
    sorted_loop = EventLoop()
    a = sorted_loop.schedule_at(1.0, lambda: None)
    sorted_loop.schedule_at(2.0, lambda: None)
    a.cancel()
    assert sorted_loop.peek_time() == 2.0

    heap_loop = EventLoop()
    heap_loop.schedule_at(3.0, lambda: None)
    b = heap_loop.schedule_at(1.0, lambda: None)  # out of order
    b.cancel()
    assert heap_loop.peek_time() == 3.0


def test_boundary_grant_then_same_time_schedule():
    # the coordinator advances a shard to a grant, then an op applied
    # AT the grant schedules more work at that exact time: it must run
    # before later events, after the already-pending boundary event
    loop = EventLoop()
    ran = []
    loop.schedule_at(2.0, lambda: ran.append("local"))
    loop.schedule_at(3.0, lambda: ran.append("later"))
    loop.advance_to(2.0)
    loop.schedule_at(2.0, lambda: ran.append("op"))
    loop.run_until(3.0)
    assert ran == ["local", "op", "later"]
