"""Unit tests for kernel descriptors and the analytic timing model."""

import pytest

from repro.errors import GPUSimError
from repro.gpu import A100_SXM4_40GB, KernelDescriptor, LaunchConfig, LaunchKind
from repro.gpu.kernel import PTB_ITERATION_OVERHEAD

SPEC = A100_SXM4_40GB


def desc(**kw):
    defaults = dict(name="k", num_blocks=1000, threads_per_block=256,
                    block_duration=50e-6)
    defaults.update(kw)
    return KernelDescriptor(**defaults)


class TestDescriptorValidation:
    def test_rejects_zero_blocks(self):
        with pytest.raises(GPUSimError):
            desc(num_blocks=0)

    def test_rejects_zero_duration(self):
        with pytest.raises(GPUSimError):
            desc(block_duration=0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(GPUSimError):
            desc(ptb_overhead_fraction=-0.1)


class TestTimingModel:
    def test_duration_is_waves_times_block_time(self):
        k = desc()
        capacity = k.capacity(SPEC)
        assert capacity == 864
        assert k.waves(SPEC) == 2
        assert k.duration(SPEC) == pytest.approx(2 * 50e-6)

    def test_single_wave_kernel(self):
        k = desc(num_blocks=100)
        assert k.waves(SPEC) == 1
        assert k.duration(SPEC) == pytest.approx(50e-6)

    def test_slice_duration(self):
        k = desc()
        assert k.slice_duration(SPEC, 100) == pytest.approx(50e-6)
        assert k.slice_duration(SPEC, 900) == pytest.approx(100e-6)

    def test_num_slices(self):
        assert desc().num_slices(100) == 10
        assert desc().num_slices(999) == 2
        assert desc().num_slices(5000) == 1

    def test_sliced_duration_includes_launch_overheads(self):
        k = desc()
        n = k.num_slices(100)
        expected = n * (SPEC.kernel_launch_overhead + 50e-6)
        assert k.sliced_duration(SPEC, 100) == pytest.approx(expected)

    def test_ptb_iteration_duration_includes_overheads(self):
        k = desc(ptb_overhead_fraction=0.05)
        expected = 50e-6 * 1.05 + PTB_ITERATION_OVERHEAD
        assert k.ptb_iteration_duration() == pytest.approx(expected)

    def test_ptb_duration_scales_with_workers(self):
        k = desc()
        assert k.ptb_duration(100) == pytest.approx(
            10 * k.ptb_iteration_duration())
        assert k.ptb_duration(1000) == pytest.approx(
            k.ptb_iteration_duration())

    def test_ptb_turnaround_is_per_iteration_time(self):
        k = desc()
        estimate = k.ptb_turnaround_estimate(SPEC, 100)
        assert estimate == pytest.approx(k.ptb_iteration_duration())

    def test_from_duration_roundtrip(self):
        k = KernelDescriptor.from_duration("k", 1e-3, 2000, 256, SPEC)
        assert k.duration(SPEC) == pytest.approx(1e-3)

    def test_scaled(self):
        k = desc()
        assert k.scaled(2.0).block_duration == pytest.approx(100e-6)
        with pytest.raises(GPUSimError):
            k.scaled(0.0)


class TestLaunchConfig:
    def test_default_is_original(self):
        cfg = LaunchConfig()
        assert cfg.kind is LaunchKind.ORIGINAL

    def test_ptb_requires_workers(self):
        with pytest.raises(GPUSimError):
            LaunchConfig(LaunchKind.PTB)

    def test_original_takes_no_workers(self):
        with pytest.raises(GPUSimError):
            LaunchConfig(LaunchKind.ORIGINAL, workers=4)
