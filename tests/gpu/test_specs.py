"""Unit tests for GPU specs and the occupancy model."""

import pytest

from repro.errors import GPUSimError
from repro.gpu import A100_SXM4_40GB, GPUSpec, RTX_3090, V100_SXM2_16GB


class TestOccupancy:
    def test_thread_limited_occupancy(self):
        spec = A100_SXM4_40GB
        # 2048 threads per SM / 256 per block = 8 blocks per SM.
        assert spec.blocks_per_sm(256, registers_per_thread=1) == 8

    def test_slot_limited_occupancy(self):
        spec = A100_SXM4_40GB
        # Tiny blocks hit the 32-blocks-per-SM architectural limit.
        assert spec.blocks_per_sm(32, registers_per_thread=1) == 32

    def test_shared_memory_limited_occupancy(self):
        spec = A100_SXM4_40GB
        smem = spec.shared_mem_per_sm // 2 + 1  # only one block fits
        assert spec.blocks_per_sm(64, shared_mem_per_block=smem,
                                  registers_per_thread=1) == 1

    def test_register_limited_occupancy(self):
        spec = A100_SXM4_40GB
        # 256 threads * 128 regs = 32768 regs -> 2 blocks in 65536.
        assert spec.blocks_per_sm(256, registers_per_thread=128) == 2

    def test_oversized_block_rejected(self):
        with pytest.raises(GPUSimError):
            A100_SXM4_40GB.blocks_per_sm(4096)

    def test_zero_threads_rejected(self):
        with pytest.raises(GPUSimError):
            A100_SXM4_40GB.blocks_per_sm(0)

    def test_kernel_that_cannot_fit(self):
        spec = A100_SXM4_40GB
        with pytest.raises(GPUSimError, match="cannot fit"):
            spec.blocks_per_sm(
                2048, shared_mem_per_block=spec.shared_mem_per_sm + 1
            )

    def test_concurrent_blocks_scales_by_sms(self):
        spec = A100_SXM4_40GB
        per_sm = spec.blocks_per_sm(512, registers_per_thread=1)
        assert spec.concurrent_blocks(512, registers_per_thread=1) == \
            per_sm * spec.num_sms

    def test_waves(self):
        spec = A100_SXM4_40GB
        capacity = spec.concurrent_blocks(256)
        assert spec.waves(capacity, 256) == 1
        assert spec.waves(capacity + 1, 256) == 2
        assert spec.waves(1, 256) == 1


class TestSpecCatalog:
    @pytest.mark.parametrize("spec", [A100_SXM4_40GB, V100_SXM2_16GB,
                                      RTX_3090])
    def test_catalog_specs_are_sane(self, spec):
        assert spec.num_sms > 0
        assert spec.total_threads == spec.num_sms * spec.max_threads_per_sm
        assert spec.total_block_slots == spec.num_sms * spec.max_blocks_per_sm

    def test_a100_matches_paper_platform(self):
        assert A100_SXM4_40GB.num_sms == 108
        assert A100_SXM4_40GB.max_threads_per_sm == 2048

    def test_invalid_spec_rejected(self):
        with pytest.raises(GPUSimError):
            GPUSpec("bad", num_sms=0, max_threads_per_sm=2048,
                    max_blocks_per_sm=32, shared_mem_per_sm=1,
                    registers_per_sm=1)
