"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("list", "table1", "table2", "fig4", "fig5a",
                        "fig5b", "fig6a", "fig6b", "fig6c", "colocate"):
            args = parser.parse_args(
                [command] if command != "colocate" else [command])
            assert args.command == command

    def test_scale_choices(self):
        parser = build_parser()
        assert parser.parse_args(["fig4", "--scale", "full"]).scale == "full"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4", "--scale", "huge"])

    def test_colocate_defaults(self):
        args = build_parser().parse_args(["colocate"])
        assert args.policy == "Tally"
        assert args.load == 0.5

    def test_colocate_model_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["colocate", "--inference", "vgg"])

    def test_jobs_and_seeds_flags(self):
        parser = build_parser()
        args = parser.parse_args(["colocate", "--seeds", "4", "--jobs", "2"])
        assert args.seeds == 4 and args.jobs == 2
        assert parser.parse_args(["colocate"]).jobs == 1
        assert parser.parse_args(["cluster", "--jobs", "3"]).jobs == 3
        assert parser.parse_args(["cluster"]).jobs == 1


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bert_infer" in out
        assert "whisper_train" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "block-level" in out

    def test_colocate_runs_small(self, capsys):
        assert main([
            "colocate", "--inference", "resnet50_infer",
            "--training", "pointnet_train", "--policy", "Tally",
            "--load", "0.2", "--duration", "2", "--warmup", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "inference p99" in out
        assert "system throughput" in out

    def test_colocate_seed_sweep_runs(self, capsys):
        assert main([
            "colocate", "--inference", "resnet50_infer",
            "--training", "pointnet_train", "--policy", "Tally",
            "--load", "0.2", "--duration", "1", "--warmup", "0.2",
            "--seeds", "2", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 seeds" in out
        assert "seed 0" in out and "seed 1" in out
        assert "mean" in out
