"""Tests for the co-location experiment runner."""

import pytest

from repro.baselines import Priority
from repro.errors import HarnessError
from repro.harness import (
    JobSpec,
    POLICY_NAMES,
    RunConfig,
    clear_standalone_cache,
    make_policy,
    run_colocation,
    standalone,
)
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice

CFG = RunConfig(duration=3.0, warmup=0.5)


class TestMakePolicy:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_names_resolve(self, name):
        engine = EventLoop()
        device = GPUDevice(A100_SXM4_40GB, engine)
        policy = make_policy(name, device, engine)
        assert policy.name == name or name == "Ideal"

    def test_unknown_policy(self):
        engine = EventLoop()
        device = GPUDevice(A100_SXM4_40GB, engine)
        with pytest.raises(HarnessError):
            make_policy("Orion", device, engine)


class TestJobSpec:
    def test_role_default_priorities(self):
        assert JobSpec.inference("bert_infer").effective_priority \
            is Priority.HIGH
        assert JobSpec.training("bert_train").effective_priority \
            is Priority.BEST_EFFORT

    def test_priority_override(self):
        spec = JobSpec.inference("bert_infer",
                                 priority=Priority.BEST_EFFORT)
        assert spec.effective_priority is Priority.BEST_EFFORT

    def test_role_mismatch_rejected(self):
        with pytest.raises(HarnessError, match="training workload"):
            run_colocation("MPS", [JobSpec.inference("bert_train")], CFG)


class TestRunColocation:
    def test_empty_jobs_rejected(self):
        with pytest.raises(HarnessError):
            run_colocation("MPS", [], CFG)

    def test_single_inference_run(self):
        result = run_colocation(
            "Ideal", [JobSpec.inference("resnet50_infer", load=0.3)], CFG)
        job = result.job("resnet50_infer#0")
        assert job.latency is not None
        assert job.completed > 50
        assert job.rate > 0

    def test_pair_run_produces_both_results(self):
        result = run_colocation(
            "Tally",
            [JobSpec.inference("resnet50_infer", load=0.3),
             JobSpec.training("pointnet_train")],
            CFG)
        assert len(result.inference_results()) == 1
        assert len(result.training_results()) == 1
        assert result.utilization > 0

    def test_duplicate_models_get_distinct_ids(self):
        result = run_colocation(
            "Tally",
            [JobSpec.inference("resnet50_infer", load=0.1),
             JobSpec.inference("resnet50_infer", load=0.1,
                               priority=Priority.BEST_EFFORT,
                               traffic_seed=1)],
            CFG)
        assert set(result.jobs) == {"resnet50_infer#0", "resnet50_infer#1"}

    def test_unknown_job_lookup(self):
        result = run_colocation(
            "Ideal", [JobSpec.inference("resnet50_infer", load=0.2)], CFG)
        with pytest.raises(HarnessError):
            result.job("nope")

    def test_warmup_must_precede_duration(self):
        with pytest.raises(HarnessError):
            RunConfig(duration=1.0, warmup=2.0)

    def test_deterministic_given_seeds(self):
        jobs = [JobSpec.inference("resnet50_infer", load=0.3),
                JobSpec.training("pointnet_train")]
        a = run_colocation("Tally", jobs, CFG)
        b = run_colocation("Tally", jobs, CFG)
        ja, jb = a.job("resnet50_infer#0"), b.job("resnet50_infer#0")
        assert ja.completed == jb.completed
        assert ja.latency.p99 == jb.latency.p99


class TestStandalone:
    def test_cached_by_configuration(self):
        clear_standalone_cache()
        job = JobSpec.inference("resnet50_infer", load=0.2)
        first = standalone(job, CFG)
        second = standalone(job, CFG)
        assert first is second
        clear_standalone_cache()
        third = standalone(job, CFG)
        assert third is not first
        assert third.completed == first.completed

    def test_different_loads_not_conflated(self):
        clear_standalone_cache()
        low = standalone(JobSpec.inference("resnet50_infer", load=0.1), CFG)
        high = standalone(JobSpec.inference("resnet50_infer", load=0.4), CFG)
        assert high.completed > low.completed

    def test_training_standalone(self):
        result = standalone(JobSpec.training("pointnet_train"), CFG)
        assert result.latency is None
        assert result.rate > 10
