"""Tests for the workload job drivers (training loop, inference server)."""

import numpy as np
import pytest

from repro.baselines import Ideal, Priority
from repro.errors import WorkloadError
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice
from repro.traffic import TrafficTrace, poisson_trace
from repro.workloads import InferenceJob, TrainingJob, get_model

SPEC = A100_SXM4_40GB


def make_policy():
    engine = EventLoop()
    device = GPUDevice(SPEC, engine)
    return Ideal(device, engine), engine


class TestTrainingJob:
    def test_iterates_continuously(self):
        policy, engine = make_policy()
        trace = get_model("pointnet_train").build_trace(SPEC)
        job = TrainingJob(trace, policy, "train")
        job.start()
        engine.run_until(2.0)
        assert job.iterations_completed > 10
        assert job.kernels_completed >= job.iterations_completed * len(
            trace.kernels)

    def test_iteration_rate_tracks_trace_duration(self):
        policy, engine = make_policy()
        trace = get_model("gpt2_train").build_trace(SPEC)
        job = TrainingJob(trace, policy, "train")
        job.start()
        engine.run_until(5.0)
        measured = job.iterations_completed / 5.0
        # Launch overheads add a little on top of the trace duration.
        expected = 1.0 / trace.duration
        assert measured == pytest.approx(expected, rel=0.25)

    def test_completions_in_window(self):
        policy, engine = make_policy()
        trace = get_model("pointnet_train").build_trace(SPEC)
        job = TrainingJob(trace, policy, "train")
        job.start()
        engine.run_until(2.0)
        total = job.iterations_completed
        assert job.completions_in(0.0, 2.0) == total
        assert job.completions_in(1.0, 2.0) < total

    def test_stop_halts_submission(self):
        policy, engine = make_policy()
        trace = get_model("pointnet_train").build_trace(SPEC)
        job = TrainingJob(trace, policy, "train")
        job.start()
        engine.run_until(0.5)
        job.stop()
        count = job.kernels_completed
        engine.run_until(1.5)
        assert job.kernels_completed <= count + 1

    def test_double_start_rejected(self):
        policy, engine = make_policy()
        trace = get_model("pointnet_train").build_trace(SPEC)
        job = TrainingJob(trace, policy, "train")
        job.start()
        with pytest.raises(WorkloadError):
            job.start()

    def test_fractional_iterations_monotone(self):
        policy, engine = make_policy()
        trace = get_model("pointnet_train").build_trace(SPEC)
        job = TrainingJob(trace, policy, "train")
        job.start()
        engine.run_until(0.1)
        first = job.fractional_iterations()
        engine.run_until(0.3)
        assert job.fractional_iterations() > first


class TestInferenceJob:
    def _job(self, load=0.3, horizon=5.0, model="bert_infer"):
        policy, engine = make_policy()
        trace = get_model(model).build_trace(SPEC)
        rate = load / trace.duration
        traffic = poisson_trace(rate, horizon, seed=11)
        job = InferenceJob(trace, traffic, policy, "inf")
        return job, engine, traffic

    def test_serves_all_requests_below_saturation(self):
        job, engine, traffic = self._job()
        job.start()
        engine.run_until(6.0)
        assert job.completed_requests == traffic.count
        assert job.pending_requests == 0

    def test_latency_includes_queueing(self):
        # Two arrivals at nearly the same instant: the second waits.
        policy, engine = make_policy()
        trace = get_model("bert_infer").build_trace(SPEC)
        traffic = TrafficTrace(np.array([1.0, 1.0001]), horizon=5.0)
        job = InferenceJob(trace, traffic, policy, "inf")
        job.start()
        engine.run_until(5.0)
        first, second = job.records
        assert second.latency > first.latency
        assert second.queueing > 0

    def test_latency_summary_windows(self):
        job, engine, traffic = self._job()
        job.start()
        engine.run_until(6.0)
        full = job.latency_summary()
        late = job.latency_summary(since=2.0)
        assert late.count < full.count

    def test_requests_served_fifo(self):
        job, engine, _ = self._job(load=0.6)
        job.start()
        engine.run_until(6.0)
        starts = [r.started for r in job.records]
        arrivals = [r.arrival for r in job.records]
        assert starts == sorted(starts)
        assert arrivals == sorted(arrivals)

    def test_double_start_rejected(self):
        job, engine, _ = self._job()
        job.start()
        with pytest.raises(WorkloadError):
            job.start()

    def test_isolated_latency_near_trace_duration(self):
        job, engine, _ = self._job(load=0.2)
        job.start()
        engine.run_until(6.0)
        summary = job.latency_summary()
        trace_duration = get_model("bert_infer").build_trace(SPEC).duration
        assert summary.p50 == pytest.approx(trace_duration, rel=0.2)
