"""Smoke tests for the per-figure experiment drivers.

The full drivers run in ``benchmarks/``; these tests check structure,
determinism, and the analytic pieces on small configurations.
"""

import pytest

from repro.gpu import A100_SXM4_40GB
from repro.harness.experiments import (
    PIPELINE_DRAIN,
    Table1Result,
    table1,
    turnaround_by_granularity,
)
from repro.workloads import get_model

SPEC = A100_SXM4_40GB


class TestTurnaroundByGranularity:
    def test_hierarchy_for_every_training_model(self):
        from repro.workloads import TRAINING_MODELS

        for name in TRAINING_MODELS:
            trace = get_model(name).build_trace(SPEC)
            t = turnaround_by_granularity(trace, SPEC)
            assert t["iteration"] > t["kernel"] > t["block"] >= t["thread"], \
                name

    def test_iteration_equals_trace_duration(self):
        trace = get_model("whisper_train").build_trace(SPEC)
        t = turnaround_by_granularity(trace, SPEC)
        assert t["iteration"] == pytest.approx(trace.duration)

    def test_kernel_residual_weighted_by_duration(self):
        """Mean residual is E[d^2]/(2E[d]) — long kernels dominate."""
        trace = get_model("whisper_train").build_trace(SPEC)
        durations = trace.kernel_durations(SPEC)
        expected = (durations ** 2).sum() / (2 * durations.sum())
        t = turnaround_by_granularity(trace, SPEC)
        assert t["kernel"] == pytest.approx(expected)

    def test_thread_level_is_pipeline_drain(self):
        trace = get_model("bert_train").build_trace(SPEC)
        assert turnaround_by_granularity(trace, SPEC)["thread"] == \
            PIPELINE_DRAIN


class TestTable1:
    def test_result_shape(self):
        result = table1()
        assert isinstance(result, Table1Result)
        assert result.training_model == "whisper_train"
        assert result.condensation > 5

    def test_matches_paper_shape(self):
        result = table1()
        # Kernel-level turnaround exceeds a full BERT inference; block
        # level is far below it (the paper's Table 1 argument).
        assert result.kernel > result.inference_latency
        assert result.block < result.inference_latency / 5

    def test_report_contains_paper_values(self):
        text = table1().report()
        assert "3.93 ms" in text
        assert "kernel-level" in text

    def test_alternative_pairings(self):
        resnet = table1("resnet50_train", "resnet50_infer")
        whisper = table1("whisper_train", "resnet50_infer")
        # ResNet50's kernel population is far shorter than Whisper's, so
        # its kernel-level turnaround is much smaller — exactly why
        # kernel-level schedulers do fine on it but not on Whisper.
        assert resnet.kernel < whisper.kernel / 2
        assert resnet.block < whisper.block

    def test_deterministic(self):
        assert table1().kernel == table1().kernel
