"""End-to-end LLM serving colocation through the harness."""

import pytest

from repro.baselines import Priority
from repro.faults import FaultConfig
from repro.harness import (
    JobSpec,
    RunConfig,
    clear_standalone_cache,
    run_colocation,
    standalone,
)
from repro.harness.experiments import llm_colocation
from repro.harness.serialize import dict_to_result, result_to_dict
from repro.metrics import ServingSLO
from repro.workloads.llm import LLMServingJob

LLM = "llama7b_serve"
TRAIN = "resnet50_train"


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_standalone_cache()
    yield
    clear_standalone_cache()


def _config(**overrides):
    params = dict(duration=6.0, warmup=1.0)
    params.update(overrides)
    return RunConfig(**params)


def _jobs():
    return [JobSpec.llm(LLM, load=0.5), JobSpec.training(TRAIN)]


class TestColocationRun:
    def test_llm_role_produces_serving_metrics(self):
        result = run_colocation("Tally", _jobs(), _config())
        job = result.job(f"{LLM}#0")
        assert job.role == "llm"
        assert job.serving is not None
        assert job.serving.ttft is not None
        assert job.serving.inter_token is not None
        assert job.serving.completed > 0
        assert job.queueing is not None
        assert job.latency is None  # serving metrics replace request p99

    def test_tally_keeps_isolation_envelope_with_be_throughput(self):
        """The acceptance criterion: HP inter-token p99 within a small
        factor of isolated while best-effort training makes progress."""
        cfg = _config()
        base = standalone(JobSpec.llm(LLM, load=0.5), cfg)
        assert base.serving is not None
        result = run_colocation("Tally", _jobs(), cfg)
        llm = result.job(f"{LLM}#0")
        train = result.job(f"{TRAIN}#0")
        assert llm.serving is not None
        itl_ratio = (llm.serving.inter_token.p99
                     / base.serving.inter_token.p99)
        ttft_ratio = llm.serving.ttft.p99 / base.serving.ttft.p99
        assert itl_ratio < 1.5
        assert ttft_ratio < 1.5
        assert train.rate > 0

    def test_non_isolating_policy_degrades_the_tail(self):
        cfg = _config()
        base = standalone(JobSpec.llm(LLM, load=0.5), cfg)
        result = run_colocation("MPS", _jobs(), cfg)
        llm = result.job(f"{LLM}#0")
        mps_ratio = (llm.serving.inter_token.p99
                     / base.serving.inter_token.p99)
        assert mps_ratio > 1.5  # indiscriminate sharing hurts decode

    def test_invariant_checker_clean(self):
        result = run_colocation("Tally", _jobs(), _config(), check=True)
        assert result.invariant_checks > 0

    def test_bit_identical_across_repeats(self):
        cfg = _config()
        a = run_colocation("Tally", _jobs(), cfg)
        b = run_colocation("Tally", _jobs(), cfg)
        da = a.drivers[f"{LLM}#0"]
        db = b.drivers[f"{LLM}#0"]
        assert isinstance(da, LLMServingJob)
        assert da.token_timeline() == db.token_timeline()
        assert da.token_timeline()

    def test_slo_goodput_accounting(self):
        cfg = _config()
        base = standalone(JobSpec.llm(LLM, load=0.5), cfg)
        slo = ServingSLO.scaled_to_ideal(base.serving.ttft.p99,
                                         base.serving.inter_token.p99,
                                         slack=2.0)
        result = run_colocation("Tally", _jobs(), _config(slo=slo))
        llm = result.job(f"{LLM}#0")
        assert llm.serving.good > 0
        assert llm.serving.good <= llm.serving.completed
        assert llm.serving.goodput <= llm.serving.requests_per_s

    def test_trainer_crash_leaves_server_standing(self):
        jobs = [JobSpec.llm(LLM, load=0.5),
                JobSpec.training(TRAIN, crash_at=3.0)]
        result = run_colocation(
            "Tally", jobs, _config(),
            faults=FaultConfig(seed=1),
        )
        assert result.fault_counts.get("client_crash") == 1
        llm = result.job(f"{LLM}#0")
        assert llm.serving.completed > 0

    def test_standalone_caches_llm_baseline(self):
        cfg = _config()
        a = standalone(JobSpec.llm(LLM, load=0.5), cfg)
        b = standalone(JobSpec.llm(LLM, load=0.5), cfg)
        assert a is b

    def test_best_effort_llm_priority_override(self):
        spec = JobSpec.llm(LLM, load=0.3, priority=Priority.BEST_EFFORT)
        assert spec.effective_priority is Priority.BEST_EFFORT
        assert JobSpec.llm(LLM).effective_priority is Priority.HIGH


class TestSerialization:
    def test_roundtrip_preserves_serving_metrics(self):
        result = run_colocation("Tally", _jobs(), _config())
        restored = dict_to_result(result_to_dict(result))
        a = result.job(f"{LLM}#0")
        b = restored.job(f"{LLM}#0")
        assert b.serving is not None
        assert b.serving.ttft.p99 == a.serving.ttft.p99
        assert b.serving.inter_token.p99 == a.serving.inter_token.p99
        assert b.serving.good == a.serving.good
        assert b.evicted == a.evicted
        assert b.queueing.p99 == a.queueing.p99
        inf = restored.job(f"{TRAIN}#0")
        assert inf.serving is None


class TestInferenceQueueingRegression:
    """Submission-time queueing must be observable, not folded silently
    into end-to-end latency (the PR 2 ``busy_for_client`` blind-spot
    class)."""

    def test_bursty_arrivals_expose_queue_delay(self):
        cfg = _config(traffic_kind="bursty", burst_ratio=30.0,
                      duration=8.0)
        result = run_colocation(
            "Ideal", [JobSpec.inference("bert_infer", load=0.6)], cfg)
        job = result.job("bert_infer#0")
        assert job.queueing is not None
        # Bursts pile requests behind a serial server: the queueing
        # tail must be visible and bounded by total latency.
        assert job.queueing.p99 > 0
        assert job.latency is not None
        assert job.queueing.p99 <= job.latency.p99
        assert job.queueing.mean <= job.latency.mean

    def test_queueing_dominates_under_overload_spike(self):
        from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice
        from repro.baselines import Ideal
        from repro.traffic import TrafficTrace
        from repro.workloads import InferenceJob, get_model
        import numpy as np

        engine = EventLoop()
        device = GPUDevice(A100_SXM4_40GB, engine)
        policy = Ideal(device, engine)
        trace = get_model("bert_infer").build_trace(A100_SXM4_40GB)
        # 20 simultaneous arrivals: the tail request queues ~19 service
        # times, dwarfing its own execution.
        arrivals = TrafficTrace(np.zeros(20) + 1e-6, 1.0)
        job = InferenceJob(trace, arrivals, policy, "inf")
        job.start()
        engine.run_until(5.0)
        q = job.queueing_summary()
        lat = job.latency_summary()
        assert q is not None
        assert q.p99 > 10 * trace.duration
        assert q.p99 < lat.p99


class TestExperiment:
    def test_llm_colocation_experiment_shape(self):
        result = llm_colocation("quick", policies=("Ideal", "Tally"))
        assert {c.policy for c in result.cells} == {"Ideal", "Tally"}
        tally = result.for_policy("Tally")
        assert tally.inter_token_ratio < 1.5
        assert tally.training_norm > 0
        assert 0.0 <= tally.slo_attainment <= 1.0
        report = result.report()
        assert "Tally" in report and "ttft p99" in report
