"""Transform memo on vs off must never change a run's metrics.

The memo is a pure compile cache: warm or cold, every artifact it
serves is content-addressed, so the figures the repository reports —
the fig4 colocation cell and the LLM serving macro — must be
bit-identical either way.  These tests run each shape against a cold
process-wide memo and again against a warmed (and deliberately
polluted-with-other-kernels) one, then compare every metric exactly.
The same holds on the functional path: a server executing over a warm
memo must compute the same buffers as one compiling from scratch.
"""

import numpy as np
import pytest

from repro.core import ExecMode, ExecPlan, TallyServer
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.ptx.library import case_names, make_case
from repro.transform import TransformPipeline, transform_memo

CFG = RunConfig(duration=2.0, warmup=0.5)

FIG4_JOBS = [JobSpec.inference("bert_infer", load=0.5),
             JobSpec.training("whisper_train")]

LLM_JOBS = [JobSpec.llm("llama7b_serve", load=0.5),
            JobSpec.training("resnet50_train")]


@pytest.fixture(autouse=True)
def cold_global_memo():
    transform_memo().clear()
    yield
    transform_memo().clear()


def warm_the_memo():
    """Fill the process-wide store with the whole kernel corpus."""
    pipeline = TransformPipeline(memo=transform_memo())
    for name in case_names():
        kernel = make_case(name, np.random.default_rng(0)).kernel
        pipeline.sliced(kernel)
        pipeline.preemptible(kernel)
    assert len(transform_memo()) > 0


def metrics_of(result):
    out = {client: job.completed for client, job in result.jobs.items()}
    out["events"] = result.events
    out["utilization"] = result.utilization
    hp = next(iter(result.jobs.values()))
    if hp.latency is not None:
        out["p99"] = hp.latency.p99
    return out


@pytest.mark.parametrize("jobs", [FIG4_JOBS, LLM_JOBS],
                         ids=["fig4", "llm_serve"])
def test_macro_metrics_identical_cache_on_vs_off(jobs):
    cold = metrics_of(run_colocation("Tally", jobs, CFG))
    transform_memo().clear()
    warm_the_memo()
    warm = metrics_of(run_colocation("Tally", jobs, CFG))
    assert cold == warm


def test_llm_serving_metrics_identical_cache_on_vs_off():
    cold = run_colocation("Tally", LLM_JOBS, CFG).llm_results()[0].serving
    transform_memo().clear()
    warm_the_memo()
    warm = run_colocation("Tally", LLM_JOBS, CFG).llm_results()[0].serving
    assert cold is not None and warm is not None
    assert cold.tokens_per_s == warm.tokens_per_s
    assert cold.ttft.p99 == warm.ttft.p99


@pytest.mark.parametrize("mode", [ExecMode.SLICED, ExecMode.PTB])
def test_functional_path_results_identical_over_warm_memo(mode):
    """Servers sharing a warm memo still compute correct buffers."""
    warm_the_memo()
    for name in ("vector_add", "block_sum", "saxpy"):
        case = make_case(name, np.random.default_rng(5))
        server = TallyServer(best_effort_plan=ExecPlan(
            mode, blocks_per_slice=3, workers=3))
        server.connect(name)
        state = server.client(name)
        state.interpreter.memory = case.memory
        server.transformer.execute(
            state.interpreter, case.kernel, case.grid, case.block,
            case.args, state.plan)
        case.check()
    # every transform was served from the warm store, none recompiled
    assert server.transformer.pipeline.stats.cache_hits > 0
