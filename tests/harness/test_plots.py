"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.errors import HarnessError
from repro.harness.plots import bar_chart, series_panel, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_data_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_constant_series_renders_floor(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_nan_renders_space(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_pinned_scale(self):
        a = sparkline([1, 2], lo=0, hi=10)
        b = sparkline([9, 10], lo=0, hi=10)
        assert max(a) < max(b)

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            sparkline([])


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_zero_values_get_sliver(self):
        chart = bar_chart(["x"], [0.0])
        assert "▏" in chart

    def test_mismatched_lengths(self):
        with pytest.raises(HarnessError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(HarnessError):
            bar_chart([], [])


class TestSeriesPanel:
    def test_panel_structure(self):
        panel = series_panel("Latency", [
            ("ideal", [1.0, 1.0, 1.0]),
            ("tally", [1.0, 1.1, 1.0]),
        ])
        lines = panel.splitlines()
        assert lines[0] == "Latency"
        assert len(lines) == 3
        assert "ideal" in lines[1] and "tally" in lines[2]
        assert "[1 .. 1]" in lines[1]

    def test_shared_scale_comparability(self):
        panel = series_panel("p", [
            ("low", [1.0, 1.0]),
            ("high", [10.0, 10.0]),
        ])
        low_line, high_line = panel.splitlines()[1:]
        assert "▁" in low_line
        assert "█" in high_line

    def test_empty_panel_rejected(self):
        with pytest.raises(HarnessError):
            series_panel("t", [])
