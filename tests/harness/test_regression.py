"""Tests for the regression comparison tool."""

import dataclasses

import pytest

from repro.errors import HarnessError
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.harness.regression import compare_results
from repro.harness.serialize import dict_to_result, result_to_dict


@pytest.fixture(scope="module")
def result():
    cfg = RunConfig(duration=2.0, warmup=0.5)
    return run_colocation("Tally", [
        JobSpec.inference("resnet50_infer", load=0.2),
        JobSpec.training("pointnet_train"),
    ], cfg)


def clone(result):
    return dict_to_result(result_to_dict(result))


class TestCompareResults:
    def test_identical_results_have_no_drift(self, result):
        assert compare_results(result, clone(result)) == []

    def test_rerun_is_deterministic_hence_no_drift(self, result):
        cfg = RunConfig(duration=2.0, warmup=0.5)
        fresh = run_colocation("Tally", [
            JobSpec.inference("resnet50_infer", load=0.2),
            JobSpec.training("pointnet_train"),
        ], cfg)
        assert compare_results(result, fresh) == []

    def test_rate_drift_detected(self, result):
        other = clone(result)
        job = other.jobs["pointnet_train#0"]
        job.rate *= 1.5
        drifts = compare_results(result, other)
        assert any(d.metric == "rate" and d.job == "pointnet_train#0"
                   for d in drifts)

    def test_latency_drift_detected(self, result):
        other = clone(result)
        job = other.jobs["resnet50_infer#0"]
        job.latency = dataclasses.replace(job.latency,
                                          p99=job.latency.p99 * 2)
        drifts = compare_results(result, other)
        assert any(d.metric == "latency.p99" for d in drifts)

    def test_within_tolerance_is_silent(self, result):
        other = clone(result)
        job = other.jobs["pointnet_train#0"]
        job.rate *= 1.05  # under the 10 % default
        assert compare_results(result, other) == []

    def test_tolerances_configurable(self, result):
        other = clone(result)
        job = other.jobs["pointnet_train#0"]
        job.rate *= 1.05
        drifts = compare_results(result, other, rate_tolerance=0.01)
        assert drifts

    def test_policy_mismatch_rejected(self, result):
        other = clone(result)
        other.policy = "MPS"
        with pytest.raises(HarnessError, match="policy"):
            compare_results(result, other)

    def test_job_set_mismatch_rejected(self, result):
        other = clone(result)
        del other.jobs["pointnet_train#0"]
        with pytest.raises(HarnessError, match="job sets"):
            compare_results(result, other)

    def test_drift_str_is_informative(self, result):
        other = clone(result)
        other.jobs["pointnet_train#0"].rate *= 2
        drift = compare_results(result, other)[0]
        text = str(drift)
        assert "pointnet_train#0" in text and "%" in text
