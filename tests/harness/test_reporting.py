"""Tests for report formatting helpers."""

import math

from repro.harness.reporting import (
    Banner,
    format_ratio,
    format_seconds,
    format_table,
)


class TestFormatSeconds:
    def test_scales(self):
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(3.93e-3) == "3.93 ms"
        assert format_seconds(40e-6) == "40 us"

    def test_nan(self):
        assert format_seconds(float("nan")) == "-"


class TestFormatRatio:
    def test_basic(self):
        assert format_ratio(1.5) == "1.50x"

    def test_nan(self):
        assert format_ratio(float("nan")) == "-"


class TestFormatTable:
    def test_columns_align(self):
        table = format_table(("a", "bbbb"), [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        # All data rows start at the same columns.
        assert lines[2].index("2") == lines[3].index("4")

    def test_title_rendered(self):
        table = format_table(("x",), [(1,)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_mixed_types_coerced(self):
        table = format_table(("a", "b"), [("s", 1.25), (None, True)])
        assert "s" in table and "1.25" in table and "None" in table


class TestBanner:
    def test_str(self):
        text = str(Banner("Title", "body"))
        assert "# Title" in text
        assert "body" in text
