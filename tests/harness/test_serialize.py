"""Tests for result serialization."""

import json

import pytest

from repro.errors import HarnessError
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.harness.serialize import (
    dict_to_result,
    load_result,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def sample_result():
    cfg = RunConfig(duration=2.0, warmup=0.5)
    return run_colocation("Tally", [
        JobSpec.inference("resnet50_infer", load=0.2),
        JobSpec.training("pointnet_train"),
    ], cfg)


class TestRoundTrip:
    def test_dict_round_trip(self, sample_result):
        restored = dict_to_result(result_to_dict(sample_result))
        assert restored.policy == sample_result.policy
        assert set(restored.jobs) == set(sample_result.jobs)
        for client_id, job in sample_result.jobs.items():
            other = restored.jobs[client_id]
            assert other.completed == job.completed
            assert other.rate == job.rate
            if job.latency is not None:
                assert other.latency == job.latency

    def test_file_round_trip(self, sample_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(sample_result, path)
        restored = load_result(path)
        assert restored.events == sample_result.events
        assert restored.utilization == pytest.approx(
            sample_result.utilization)

    def test_json_is_plain_data(self, sample_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(sample_result, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["config"]["spec"] == "A100-SXM4-40GB"

    def test_config_restored(self, sample_result):
        restored = dict_to_result(result_to_dict(sample_result))
        assert restored.config.duration == sample_result.config.duration
        assert restored.config.spec.name == sample_result.config.spec.name


class TestErrors:
    def test_unknown_version_rejected(self, sample_result):
        payload = result_to_dict(sample_result)
        payload["format_version"] = 99
        with pytest.raises(HarnessError, match="version"):
            dict_to_result(payload)

    def test_unknown_spec_rejected(self, sample_result):
        payload = result_to_dict(sample_result)
        payload["config"]["spec"] = "H100"
        with pytest.raises(HarnessError, match="spec"):
            dict_to_result(payload)

    def test_missing_file(self, tmp_path):
        with pytest.raises(HarnessError):
            load_result(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(HarnessError):
            load_result(path)
