"""Parallel sweep runner: bit-identity with the serial path.

The contract under test is the strongest one the runner makes: for any
sweep — plain, invariant-checked, or fault-injected — ``jobs=N``
returns results byte-for-byte equal (via the serialization layer) to
``jobs=1``.  Process pools are slow to spin up, so sims stay short.
"""

import pytest

from repro.cluster import ClusterJob, packed_placement
from repro.cluster.simulate import evaluate_placement
from repro.check.differential import run_validation
from repro.errors import HarnessError
from repro.faults import FaultConfig
from repro.harness import (JobSpec, RunConfig, SweepCase, run_sweep,
                           seed_sweep)
from repro.harness.serialize import result_to_dict

CONFIG = RunConfig(duration=0.8, warmup=0.2)
JOBS = (JobSpec.inference("bert_infer", load=0.5),
        JobSpec.training("whisper_train"))


def dicts(results):
    return [result_to_dict(r) for r in results]


class TestRunSweep:
    def test_parallel_matches_serial(self):
        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=range(4))
        serial = run_sweep(cases, jobs=1)
        parallel = run_sweep(cases, jobs=4)
        assert dicts(serial) == dicts(parallel)

    def test_parallel_matches_serial_across_policies(self):
        cases = [SweepCase(policy=policy, jobs=JOBS, config=CONFIG)
                 for policy in ("Ideal", "Time-Slicing", "Tally")]
        assert dicts(run_sweep(cases, jobs=3)) == dicts(
            run_sweep(cases, jobs=1))

    def test_parallel_matches_serial_under_check(self):
        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=range(2),
                           check=True)
        serial = run_sweep(cases, jobs=1)
        parallel = run_sweep(cases, jobs=2)
        assert dicts(serial) == dicts(parallel)
        assert all(r.invariant_checks > 0 for r in parallel)

    def test_parallel_matches_serial_under_faults(self):
        faults = FaultConfig(seed=3, drop=0.02, lost_ack=0.1)
        cases = seed_sweep("REEF", JOBS, CONFIG, seeds=range(2),
                           faults=faults)
        serial = run_sweep(cases, jobs=1)
        parallel = run_sweep(cases, jobs=2)
        assert dicts(serial) == dicts(parallel)
        assert [r.fault_counts for r in serial] == \
            [r.fault_counts for r in parallel]

    def test_parallel_matches_serial_with_warm_memo(self):
        """Workers warmed from the parent's transform-memo snapshot
        (the pool initializer) must stay bit-identical to serial."""
        import numpy as np

        from repro.ptx.library import case_names, make_case
        from repro.transform import TransformPipeline, transform_memo

        transform_memo().clear()
        try:
            pipeline = TransformPipeline(memo=transform_memo())
            for name in case_names():
                pipeline.sliced(
                    make_case(name, np.random.default_rng(0)).kernel)
            cases = seed_sweep("Tally", JOBS, CONFIG, seeds=range(2))
            serial = run_sweep(cases, jobs=1)
            parallel = run_sweep(cases, jobs=2)
        finally:
            transform_memo().clear()
        assert dicts(serial) == dicts(parallel)

    def test_drivers_are_stripped_on_both_paths(self):
        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=range(2))
        for result in run_sweep(cases, jobs=1) + run_sweep(cases, jobs=2):
            assert result.drivers == {}

    def test_results_come_back_in_case_order(self):
        # Seeds give each case a distinct fingerprint; order must hold
        # even when a later (lighter) case finishes first.
        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=(5, 1, 9))
        serial = run_sweep(cases, jobs=1)
        parallel = run_sweep(cases, jobs=3)
        assert [r.config.trace_seed for r in parallel] == [5, 1, 9]
        assert dicts(serial) == dicts(parallel)

    def test_single_case_runs_in_process(self):
        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=(0,))
        assert len(run_sweep(cases, jobs=8)) == 1


class TestSeedSweep:
    def test_reseeds_traffic_trace_and_faults(self):
        faults = FaultConfig(seed=10, drop=0.1)
        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=(0, 3),
                           faults=faults)
        assert [c.config.trace_seed for c in cases] == [0, 3]
        assert cases[0].jobs[0].traffic_seed != cases[1].jobs[0].traffic_seed
        # Co-located jobs within one case stay decorrelated.
        assert cases[1].jobs[0].traffic_seed != cases[1].jobs[1].traffic_seed
        assert cases[0].faults.seed == 10
        assert cases[1].faults.seed == 13
        assert cases[0].label == "seed 0"

    def test_cases_are_picklable(self):
        import pickle

        cases = seed_sweep("Tally", JOBS, CONFIG, seeds=(0,),
                           check=True, faults=FaultConfig(seed=1))
        assert pickle.loads(pickle.dumps(cases[0])) == cases[0]


class TestClusterJobs:
    def place(self):
        jobs = [ClusterJob("bert_infer", load=0.12, traffic_seed=0),
                ClusterJob("resnet50_infer", load=0.10, traffic_seed=1),
                ClusterJob("pointnet_train", traffic_seed=2),
                ClusterJob("resnet50_train", traffic_seed=3)]
        return packed_placement(jobs, compute_budget=1.4)

    def test_evaluate_placement_parallel_is_identical(self):
        placement = self.place()
        serial = evaluate_placement(placement, "Tally", CONFIG, jobs=1)
        parallel = evaluate_placement(placement, "Tally", CONFIG, jobs=4)
        assert serial.services == parallel.services
        assert (serial.total_normalized_throughput
                == parallel.total_normalized_throughput)
        assert serial.events == parallel.events
        assert serial.gpus_used == parallel.gpus_used

    def test_tracer_rejected_with_multiple_jobs(self):
        from repro.trace import Tracer

        with pytest.raises(HarnessError, match="jobs=1"):
            evaluate_placement(self.place(), "Tally", CONFIG,
                               tracer=Tracer(), jobs=2)


class TestValidationJobs:
    def test_parallel_validation_is_identical(self):
        serial = run_validation(seeds=(0, 1), policies=("Tally", "REEF"))
        parallel = run_validation(seeds=(0, 1), policies=("Tally", "REEF"),
                                  jobs=2)
        assert serial.divergences == parallel.divergences
        assert serial.invariant_checks == parallel.invariant_checks
        assert serial.ok and parallel.ok
