"""Tests for latency and throughput metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HarnessError
from repro.metrics import (
    LatencySummary,
    ThroughputSample,
    normalized_throughput,
    percentile,
    system_throughput,
)


class TestPercentile:
    def test_matches_numpy(self):
        data = [1.0, 2.0, 3.0, 10.0]
        assert percentile(data, 50) == pytest.approx(np.percentile(data, 50))

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(HarnessError):
            percentile([1.0], 101)


class TestLatencySummary:
    def test_of_computes_order_statistics(self):
        samples = list(range(1, 101))
        s = LatencySummary.of(samples)
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert s.p50 == pytest.approx(50.5)
        assert s.max == 100

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            LatencySummary.of([])

    def test_slowdown_and_overhead(self):
        base = LatencySummary.of([1.0] * 10)
        slow = LatencySummary.of([2.0] * 10)
        assert slow.slowdown_vs(base) == pytest.approx(2.0)
        assert slow.overhead_vs(base) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=1e-6, max_value=100.0),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, samples):
        s = LatencySummary.of(samples)
        assert s.p50 <= s.p90 <= s.p99 <= s.max
        assert min(samples) <= s.mean <= s.max


class TestThroughput:
    def test_sample_rate(self):
        assert ThroughputSample(50, 10.0).rate == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(HarnessError):
            ThroughputSample(1, 0.0)
        with pytest.raises(HarnessError):
            ThroughputSample(-1, 1.0)

    def test_normalized(self):
        measured = ThroughputSample(40, 10.0)
        baseline = ThroughputSample(50, 10.0)
        assert normalized_throughput(measured, baseline) == pytest.approx(0.8)

    def test_normalized_rejects_zero_baseline(self):
        with pytest.raises(HarnessError):
            normalized_throughput(ThroughputSample(1, 1.0),
                                  ThroughputSample(0, 1.0))

    def test_system_throughput_sums(self):
        assert system_throughput({"a": 0.8, "b": 0.4}) == pytest.approx(1.2)

    def test_system_throughput_empty_rejected(self):
        with pytest.raises(HarnessError):
            system_throughput({})
