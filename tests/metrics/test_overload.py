"""Overload metrics: amplification, shed causes, breaker timelines,
time-to-recover, and windowed attainment edges."""

import math
from types import SimpleNamespace

from repro.metrics import (
    BreakerEvent,
    OverloadReport,
    attainment_through_window,
)
from repro.virt.channel import ChannelStats


def channel(client_id="c", breaker=None, **stats):
    return SimpleNamespace(client_id=client_id,
                           stats=ChannelStats(**stats), breaker=breaker)


def breaker_with(*transitions):
    return SimpleNamespace(transitions=list(transitions))


class TestOverloadReport:
    def test_empty_run_is_quiet(self):
        report = OverloadReport.of([channel()])
        assert report.amplification == 1.0
        assert report.sheds == {}
        assert report.breaker_timeline == ()
        assert report.time_to_recover == 0.0

    def test_amplification_aggregates_across_clients(self):
        report = OverloadReport.of([
            channel("a", fresh_calls=10, retries=10),
            channel("b", fresh_calls=10, retries=0),
        ])
        assert report.fresh_calls == 20
        assert report.retries == 10
        assert report.amplification == 1.5

    def test_sheds_keyed_by_cause_and_zero_suppressed(self):
        report = OverloadReport.of(
            [channel(deadline_give_ups=2, budget_exhausted=3,
                     breaker_fast_fails=4)],
            server_deadline_sheds=5)
        assert report.sheds == {"deadline-client": 2, "retry-budget": 3,
                                "breaker": 4, "deadline-server": 5}
        assert report.total_sheds == 14

    def test_timeline_merged_and_time_ordered(self):
        report = OverloadReport.of([
            channel("b", breaker=breaker_with(
                (2.0, "closed", "open", "failures"),
                (3.0, "open", "half_open", "window"),
                (3.0, "half_open", "closed", "probe ok"))),
            channel("a", breaker=breaker_with(
                (2.5, "closed", "open", "failures"),
                (4.0, "open", "half_open", "window"),
                (4.0, "half_open", "closed", "probe ok"))),
        ])
        assert [e.ts for e in report.breaker_timeline] == \
            [2.0, 2.5, 3.0, 3.0, 4.0, 4.0]
        assert report.breaker_timeline[0] == BreakerEvent(
            2.0, "b", "closed", "open", "failures")
        # first open at 2.0, last close at 4.0
        assert report.time_to_recover == 2.0

    def test_stuck_breaker_never_recovers(self):
        report = OverloadReport.of([
            channel("a", breaker=breaker_with(
                (2.0, "closed", "open", "failures"))),
        ])
        assert math.isinf(report.time_to_recover)

    def test_reclosed_then_reopened_breaker_is_stuck(self):
        report = OverloadReport.of([
            channel("a", breaker=breaker_with(
                (1.0, "closed", "open", "failures"),
                (2.0, "open", "half_open", "window"),
                (2.0, "half_open", "closed", "probe ok"),
                (3.0, "closed", "open", "failures"))),
        ])
        assert math.isinf(report.time_to_recover)

    def test_format_elides_long_timelines(self):
        events = [(float(i), "closed", "open", "x") for i in range(20)]
        report = OverloadReport.of(
            [channel("a", breaker=breaker_with(*events))])
        text = report.format(max_transitions=4)
        assert "... 16 more" in text
        assert "... " not in report.format(max_transitions=None)


class TestAttainmentThroughWindow:
    SAMPLES = [(1.0, 0.01), (2.0, 0.50), (3.0, 0.01)]

    def test_counts_only_samples_inside_the_window(self):
        value = attainment_through_window(self.SAMPLES, 0.02, (0.0, 4.0))
        assert value == 2 / 3
        assert attainment_through_window(
            self.SAMPLES, 0.02, (1.5, 2.5)) == 0.0
        assert attainment_through_window(
            self.SAMPLES, 0.02, (2.5, 4.0)) == 1.0

    def test_zero_length_window_is_vacuously_met(self):
        assert attainment_through_window(self.SAMPLES, 0.02,
                                         (2.0, 2.0)) == 1.0

    def test_inverted_window_is_vacuously_met(self):
        assert attainment_through_window(self.SAMPLES, 0.02,
                                         (3.0, 1.0)) == 1.0

    def test_empty_window_is_vacuously_met_not_nan(self):
        value = attainment_through_window(self.SAMPLES, 0.02, (10.0, 11.0))
        assert value == 1.0
        assert not math.isnan(value)

    def test_boundaries_are_half_open(self):
        # start inclusive, end exclusive
        assert attainment_through_window(
            self.SAMPLES, 1.0, (1.0, 2.0)) == 1.0
        assert attainment_through_window(
            [(2.0, 9.9)], 1.0, (1.0, 2.0)) == 1.0
