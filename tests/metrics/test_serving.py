"""SLO-aware serving metrics."""

import math

import pytest

from repro.errors import HarnessError
from repro.metrics import ServingSLO, ServingSummary


def test_slo_validation():
    with pytest.raises(HarnessError):
        ServingSLO(ttft=0, inter_token=0.1)
    with pytest.raises(HarnessError):
        ServingSLO(ttft=0.1, inter_token=-1)


def test_slo_met_by_worst_gap_semantics():
    slo = ServingSLO(ttft=0.1, inter_token=0.02)
    assert slo.met_by(0.05, 0.01)
    assert not slo.met_by(0.15, 0.01)  # TTFT blown
    assert not slo.met_by(0.05, 0.05)  # one stalled gap blows it


def test_scaled_to_ideal():
    slo = ServingSLO.scaled_to_ideal(0.010, 0.002, slack=2.0)
    assert slo.ttft == pytest.approx(0.020)
    assert slo.inter_token == pytest.approx(0.004)
    with pytest.raises(HarnessError):
        ServingSLO.scaled_to_ideal(0.010, 0.002, slack=1.0)


def _summary(slo=None):
    return ServingSummary.of(
        ttfts=[0.01, 0.02, 0.03],
        gaps=[0.001, 0.002, 0.004, 0.008],
        request_timings=[(0.01, 0.002), (0.02, 0.004), (0.03, 0.05)],
        evicted=1,
        tokens=120,
        span=10.0,
        slo=slo,
    )


def test_summary_rates():
    s = _summary()
    assert s.completed == 3
    assert s.tokens_per_s == pytest.approx(12.0)
    assert s.requests_per_s == pytest.approx(0.3)
    # No SLO: every completed request is good.
    assert s.good == 3
    assert s.goodput == pytest.approx(0.3)
    assert s.slo_attainment == pytest.approx(1.0)


def test_summary_goodput_under_slo():
    slo = ServingSLO(ttft=0.025, inter_token=0.01)
    s = _summary(slo)
    # Request 3 blows TTFT (0.03 > 0.025) and its worst gap (0.05);
    # requests 1-2 meet both bounds.
    assert s.good == 2
    assert s.goodput == pytest.approx(0.2)
    assert s.slo_attainment == pytest.approx(2 / 3)


def test_summary_percentiles_from_pooled_samples():
    s = _summary()
    assert s.ttft is not None and s.inter_token is not None
    assert s.ttft.p50 == pytest.approx(0.02)
    assert s.inter_token.p99 <= 0.008


def test_empty_window():
    s = ServingSummary.of(ttfts=[], gaps=[], request_timings=[],
                          evicted=0, tokens=0, span=5.0)
    assert s.ttft is None and s.inter_token is None
    assert s.completed == 0
    assert math.isnan(s.slo_attainment)
    assert s.goodput == 0.0


def test_summary_validation():
    with pytest.raises(HarnessError):
        ServingSummary.of(ttfts=[], gaps=[], request_timings=[],
                          evicted=0, tokens=0, span=0.0)
    with pytest.raises(HarnessError):
        ServingSummary(completed=1, evicted=0, tokens=0, span=1.0,
                       ttft=None, inter_token=None, good=2)
