"""Unit tests for the fluent kernel builder."""

import pytest

from repro.errors import ValidationError
from repro.ptx import CompareOp, KernelBuilder, Opcode, Param, ParamKind, Reg
from repro.ptx.builder import as_operand
from repro.ptx.ir import Imm, SharedDecl


class TestAsOperand:
    def test_coerces_literals(self):
        assert as_operand(3) == Imm(3)
        assert as_operand(2.5) == Imm(2.5)
        assert as_operand(True) == Imm(True)

    def test_passes_operands_through(self):
        r = Reg("x")
        assert as_operand(r) is r

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_operand("not an operand")  # type: ignore[arg-type]


class TestKernelBuilder:
    def test_auto_appends_ret(self):
        b = KernelBuilder("k")
        b.mov(1)
        kernel = b.build()
        assert kernel.body[-1].op is Opcode.RET

    def test_no_double_ret(self):
        b = KernelBuilder("k")
        b.ret()
        kernel = b.build()
        assert sum(1 for i in kernel.body if i.op is Opcode.RET) == 1

    def test_duplicate_param_rejected(self):
        b = KernelBuilder("k")
        b.i32_param("n")
        with pytest.raises(ValidationError):
            b.i32_param("n")

    def test_duplicate_shared_rejected(self):
        b = KernelBuilder("k")
        b.shared_buffer("s", 4)
        with pytest.raises(ValidationError):
            b.shared_buffer("s", 8)

    def test_shared_size_validated(self):
        b = KernelBuilder("k")
        with pytest.raises(ValidationError):
            b.shared_buffer("s", 0)

    def test_registers_are_unique(self):
        b = KernelBuilder("k")
        regs = {b.reg().name for _ in range(50)}
        assert len(regs) == 50

    def test_label_attaches_to_next_instruction(self):
        b = KernelBuilder("k")
        name = b.label("spot")
        b.mov(1)
        kernel = b.build()
        assert name == "spot"
        assert kernel.body[0].label == "spot"

    def test_two_labels_insert_nop(self):
        b = KernelBuilder("k")
        b.label("one")
        b.label("two")
        b.mov(1)
        kernel = b.build()
        assert kernel.body[0].op is Opcode.NOP
        assert kernel.body[0].label == "one"
        assert kernel.body[1].label == "two"

    def test_trailing_label_carried_by_nop(self):
        b = KernelBuilder("k")
        b.bra("end")
        b.label("end")
        kernel = b.build()
        labels = kernel.labels()
        assert "end" in labels

    def test_setp_records_compare_op(self):
        b = KernelBuilder("k")
        b.setp(CompareOp.LT, 1, 2)
        kernel = b.build()
        assert kernel.body[0].cmp is CompareOp.LT

    def test_explicit_dst_reuse(self):
        b = KernelBuilder("k")
        acc = b.mov(0)
        result = b.add(acc, 1, dst=acc)
        assert result is acc

    def test_declare_param_duplicate_rejected(self):
        b = KernelBuilder("k")
        b.declare_param(Param("p", ParamKind.I32))
        with pytest.raises(ValidationError):
            b.declare_param(Param("p", ParamKind.F32))

    def test_declare_shared_duplicate_rejected(self):
        b = KernelBuilder("k")
        b.declare_shared(SharedDecl("s", 2))
        with pytest.raises(ValidationError):
            b.declare_shared(SharedDecl("s", 2))

    def test_brx_builds_table(self):
        b = KernelBuilder("k")
        b.label("a")
        b.nop()
        b.label("c")
        b.nop()
        b.brx(["a", "c"], 0)
        kernel = b.build()
        brx = kernel.body[-2]
        assert brx.op is Opcode.BRX
        assert brx.targets == ("a", "c")

    def test_global_thread_id_x_shape(self):
        b = KernelBuilder("k")
        b.global_thread_id_x()
        kernel = b.build()
        assert kernel.body[0].op is Opcode.MAD
