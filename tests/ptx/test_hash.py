"""Content hashing of kernels: the cache-key contract.

The transform memo keys on :func:`repro.ptx.ir_hash`, so these tests
pin down exactly what the digest may and may not depend on: content
only (never object identity), declaration order canonicalized away,
instruction order preserved, and immediates distinguished by type.
"""

import copy

from repro.ptx import canonical_form, ir_hash
from repro.ptx.ir import Imm, Instr, KernelIR, Opcode, Param, ParamKind, Reg
from repro.ptx.library import case_names, make_case, saxpy, vector_add

import numpy as np


def imm_kernel(value):
    """Minimal kernel whose only difference is one immediate."""
    return KernelIR(
        name="imm_probe",
        params=[Param("out", ParamKind.PTR)],
        body=[Instr(Opcode.MOV, dst=Reg("r0"), srcs=(Imm(value),))],
    )


class TestIdentityFreedom:
    def test_fresh_builds_hash_identically(self):
        assert ir_hash(vector_add()) == ir_hash(vector_add())

    def test_deep_copy_hashes_identically(self):
        kernel = saxpy()
        assert ir_hash(copy.deepcopy(kernel)) == ir_hash(kernel)

    def test_whole_corpus_is_self_stable(self):
        # Same seed both times: some cases size the kernel (shared
        # buffers, block shape) from the rng, which is real content.
        for name in case_names():
            case = make_case(name, np.random.default_rng(7))
            again = make_case(name, np.random.default_rng(7))
            assert ir_hash(case.kernel) == ir_hash(again.kernel)


class TestSensitivity:
    def test_distinct_kernels_hash_differently(self):
        digests = {ir_hash(make_case(name, np.random.default_rng(1)).kernel)
                   for name in case_names()}
        assert len(digests) == len(case_names())

    def test_param_declaration_order_is_canonicalized(self):
        a = vector_add()
        b = vector_add()
        b.params = list(reversed(b.params))
        assert ir_hash(a) == ir_hash(b)

    def test_shared_declaration_order_is_canonicalized(self):
        a = make_case("block_sum", np.random.default_rng(2)).kernel
        b = copy.deepcopy(a)
        b.shared = list(reversed(b.shared))
        assert ir_hash(a) == ir_hash(b)

    def test_instruction_order_is_semantic(self):
        a = vector_add()
        b = vector_add()
        b.body = list(reversed(b.body))
        assert ir_hash(a) != ir_hash(b)

    def test_name_is_part_of_the_content(self):
        a = vector_add()
        b = vector_add()
        b.name = "vector_add_v2"
        assert ir_hash(a) != ir_hash(b)

    def test_immediates_distinguish_type(self):
        # repr() alone conflates these; the digest must not.
        digests = {ir_hash(imm_kernel(v)) for v in (1, 1.0, True)}
        assert len(digests) == 3

    def test_digest_shape(self):
        digest = ir_hash(vector_add())
        assert len(digest) == 32
        int(digest, 16)  # hex


class TestCanonicalForm:
    def test_is_nested_primitives(self):
        def primitive(node):
            if isinstance(node, tuple):
                return all(primitive(item) for item in node)
            return node is None or isinstance(node, (str, int, float, bool))

        assert primitive(canonical_form(vector_add()))

    def test_equal_forms_mean_equal_hashes(self):
        a, b = vector_add(), vector_add()
        assert canonical_form(a) == canonical_form(b)
        assert ir_hash(a) == ir_hash(b)
