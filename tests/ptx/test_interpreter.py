"""Unit tests for the functional interpreter's execution semantics."""

import numpy as np
import pytest

from repro.errors import (
    ExecutionError,
    InstructionLimitExceeded,
    MemoryError_,
    SyncDivergenceError,
)
from repro.ptx import (
    CompareOp,
    DeviceMemory,
    GlobalRef,
    Interpreter,
    KernelBuilder,
)
from repro.ptx.interpreter import SharedRef


class TestDeviceMemory:
    def test_alloc_returns_zeroed_buffer(self):
        mem = DeviceMemory()
        ref = mem.alloc(8)
        assert mem.read(ref, 0) == 0.0
        assert mem.read(ref, 7) == 0.0

    def test_alloc_rejects_bad_size(self):
        with pytest.raises(MemoryError_):
            DeviceMemory().alloc(0)

    def test_named_alloc_collision(self):
        mem = DeviceMemory()
        mem.alloc(4, name="x")
        with pytest.raises(MemoryError_):
            mem.alloc(4, name="x")

    def test_bind_exposes_array(self):
        mem = DeviceMemory()
        arr = np.arange(5.0)
        ref = mem.bind("data", arr)
        assert mem.read(ref, 3) == 3.0
        mem.write(ref, 3, 42.0)
        assert arr[3] == 42.0

    def test_bind_rejects_2d(self):
        with pytest.raises(MemoryError_):
            DeviceMemory().bind("m", np.zeros((2, 2)))

    def test_out_of_bounds_read(self):
        mem = DeviceMemory()
        ref = mem.alloc(4)
        with pytest.raises(MemoryError_):
            mem.read(ref, 4)
        with pytest.raises(MemoryError_):
            mem.read(ref, -1)

    def test_pointer_advanced_offsets(self):
        mem = DeviceMemory()
        ref = mem.alloc(8)
        mem.write(ref.advanced(3), 0, 5.0)
        assert mem.read(ref, 3) == 5.0

    def test_free_releases(self):
        mem = DeviceMemory()
        ref = mem.alloc(4)
        mem.free(ref)
        with pytest.raises(MemoryError_):
            mem.read(ref, 0)

    def test_atomic_add_returns_old(self):
        mem = DeviceMemory()
        ref = mem.alloc(1, dtype=np.int64)
        assert mem.atomic_add(ref, 0, 5) == 0
        assert mem.atomic_add(ref, 0, 3) == 5
        assert mem.read(ref, 0) == 8

    def test_atomic_cas(self):
        mem = DeviceMemory()
        ref = mem.alloc(1)
        assert mem.atomic_cas(ref, 0, 0.0, 9.0) == 0.0
        assert mem.read(ref, 0) == 9.0
        assert mem.atomic_cas(ref, 0, 1.0, 2.0) == 9.0  # compare fails
        assert mem.read(ref, 0) == 9.0

    def test_atomic_exch(self):
        mem = DeviceMemory()
        ref = mem.alloc(1)
        assert mem.atomic_exch(ref, 0, 4.0) == 0.0
        assert mem.read(ref, 0) == 4.0


def _run(builder: KernelBuilder, grid=1, block=1, args=None, mem=None, **kw):
    mem = mem if mem is not None else DeviceMemory()
    kernel = builder.build()
    Interpreter(mem, **kw).launch(kernel, grid, block, args or {}, )
    return mem


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.div(-7, 2))
        b.st(o, 1, b.rem(-7, 2))
        _run(b, args={"out": out}, mem=mem)
        assert mem.read(out, 0) == -3  # C semantics, not Python floor
        assert mem.read(out, 1) == -1

    def test_float_division(self):
        mem = DeviceMemory()
        out = mem.alloc(1)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.div(1.0, 4.0))
        _run(b, args={"out": out}, mem=mem)
        assert mem.read(out, 0) == 0.25

    def test_division_by_zero_raises(self):
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.div(1, 0))
        mem = DeviceMemory()
        out = mem.alloc(1)
        with pytest.raises(ExecutionError):
            _run(b, args={"out": out}, mem=mem)

    def test_min_max_shift(self):
        mem = DeviceMemory()
        out = mem.alloc(4)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.min_(3, 7))
        b.st(o, 1, b.max_(3, 7))
        b.st(o, 2, b.shl(1, 4))
        b.st(o, 3, b.shr(32, 2))
        _run(b, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [3, 7, 16, 8]

    def test_selp_and_setp(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        p = b.setp(CompareOp.LT, 1, 2)
        b.st(o, 0, b.selp(10, 20, p))
        q = b.setp(CompareOp.GE, 1, 2)
        b.st(o, 1, b.selp(10, 20, q))
        _run(b, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [10, 20]

    def test_cvt_int_truncates(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.cvt_int(3.9))
        b.st(o, 1, b.cvt_int(-3.9))
        _run(b, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [3, -3]

    def test_pointer_arithmetic_via_add(self):
        mem = DeviceMemory()
        data = mem.alloc(8)
        b = KernelBuilder("k")
        base = b.ptr_param("data")
        shifted = b.add(base, 2)
        b.st(shifted, 0, 1.5)
        _run(b, args={"data": data}, mem=mem)
        assert mem.read(data, 2) == 1.5

    def test_mul_on_pointer_rejected(self):
        mem = DeviceMemory()
        data = mem.alloc(4)
        b = KernelBuilder("k")
        base = b.ptr_param("data")
        b.mul(base, 2)
        with pytest.raises(ExecutionError):
            _run(b, args={"data": data}, mem=mem)


class TestControlFlow:
    def test_undefined_register_read_raises(self):
        b = KernelBuilder("k")
        from repro.ptx import Reg

        b.add(Reg("never_written"), 1)
        with pytest.raises(ExecutionError):
            _run(b)

    def test_missing_argument_raises(self):
        b = KernelBuilder("k")
        b.i32_param("n")
        b.nop()
        kernel = b.build()
        with pytest.raises(ExecutionError, match="without arguments"):
            Interpreter(DeviceMemory()).launch(kernel, 1, 1, {})

    def test_infinite_loop_hits_instruction_limit(self):
        b = KernelBuilder("k")
        b.label("loop")
        b.nop()
        b.bra("loop")
        kernel = b.build()
        interp = Interpreter(DeviceMemory(), max_instructions_per_thread=500)
        with pytest.raises(InstructionLimitExceeded):
            interp.launch(kernel, 1, 1, {})

    def test_brx_dispatches_by_index(self):
        mem = DeviceMemory()
        out = mem.alloc(1)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        sel = b.i32_param("sel")
        b.brx(["a", "c"], sel)
        b.label("a")
        b.st(o, 0, 100)
        b.ret()
        b.label("c")
        b.st(o, 0, 300)
        b.ret()
        kernel = b.build()
        for sel_value, expect in [(0, 100), (1, 300)]:
            mem2 = DeviceMemory()
            out2 = mem2.alloc(1)
            Interpreter(mem2).launch(kernel, 1, 1, {"out": out2, "sel": sel_value})
            assert mem2.read(out2, 0) == expect

    def test_brx_out_of_range(self):
        b = KernelBuilder("k")
        b.label("a")
        b.brx(["a"], 5)
        kernel = b.build()
        with pytest.raises(ExecutionError, match="brx index"):
            Interpreter(DeviceMemory()).launch(kernel, 1, 1, {})

    def test_block_order_must_be_permutation(self):
        b = KernelBuilder("k")
        b.nop()
        kernel = b.build()
        with pytest.raises(ExecutionError, match="permutation"):
            Interpreter(DeviceMemory()).launch(kernel, 4, 1, {},
                                               block_order=[0, 1, 2, 2])


class TestBarrierSemantics:
    def test_all_threads_sync_and_continue(self):
        mem = DeviceMemory()
        out = mem.alloc(4)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        s = b.shared_buffer("s", 4)
        tid = b.mov(b.tid())
        b.st(s, tid, b.add(tid, 10))
        b.bar()
        # read neighbour's value (wraps via xor 1)
        partner = b.xor(tid, 1)
        b.st(o, tid, b.ld(s, partner))
        _run(b, grid=1, block=4, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [11, 10, 13, 12]

    def test_divergent_barriers_raise(self):
        b = KernelBuilder("k")
        tid = b.mov(b.tid())
        p = b.setp(CompareOp.EQ, tid, 0)
        b.bra("other", pred=p)
        b.bar()  # barrier 1 (threads != 0)
        b.ret()
        b.label("other")
        b.bar()  # barrier 2 (thread 0)
        b.ret()
        kernel = b.build()
        with pytest.raises(SyncDivergenceError):
            Interpreter(DeviceMemory()).launch(kernel, 1, 2, {})

    def test_exited_threads_do_not_block_barrier(self):
        # Modern (sm_70+) semantics: returned threads are excluded.
        mem = DeviceMemory()
        out = mem.alloc(1)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        tid = b.mov(b.tid())
        p = b.setp(CompareOp.GE, tid, 2)
        b.ret(pred=p)  # upper half exits before the barrier
        b.bar()
        q = b.setp(CompareOp.EQ, tid, 0)
        b.st(o, 0, 7, pred=q)
        _run(b, grid=1, block=4, args={"out": out}, mem=mem)
        assert mem.read(out, 0) == 7


class TestSpecialRegisters:
    def test_grid_and_block_indices(self):
        mem = DeviceMemory()
        out = mem.alloc(6 * 2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        i = b.global_thread_id_x()
        encoded = b.mad(b.ctaid(), 100, b.tid())
        b.st(o, i, encoded)
        _run(b, grid=6, block=2, args={"out": out}, mem=mem)
        expected = [bx * 100 + tx for bx in range(6) for tx in range(2)]
        assert list(mem.array(out)) == expected

    def test_ntid_nctaid(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.mov(b.ntid()))
        b.st(o, 1, b.mov(b.nctaid()))
        _run(b, grid=5, block=3, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [3, 5]


class TestSharedMemory:
    def test_shared_is_per_block(self):
        mem = DeviceMemory()
        out = mem.alloc(4)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        s = b.shared_buffer("s", 1)
        # Each block increments its own shared counter once per thread;
        # the final value must equal the block size, not accumulate
        # across blocks.
        b.atom_add(s, 0, 1)
        b.bar()
        tid = b.mov(b.tid())
        q = b.setp(CompareOp.EQ, tid, 0)
        b.st(o, b.mov(b.ctaid()), b.ld(s, 0), pred=q)
        _run(b, grid=4, block=3, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [3, 3, 3, 3]

    def test_shared_out_of_bounds(self):
        b = KernelBuilder("k")
        s = b.shared_buffer("s", 2)
        b.st(s, 5, 1.0)
        with pytest.raises(MemoryError_):
            _run(b)


class TestInstrHook:
    def test_hook_observes_and_mutates_memory(self):
        mem = DeviceMemory()
        flag = mem.alloc(1)
        out = mem.alloc(1)
        b = KernelBuilder("k")
        f = b.ptr_param("flag")
        o = b.ptr_param("out")
        b.label("spin")
        v = b.ld(f, 0)
        p = b.setp(CompareOp.EQ, v, 0)
        b.bra("spin", pred=p)
        b.st(o, 0, 99)
        kernel = b.build()

        def hook(interp):
            interp.memory.write(flag, 0, 1)

        interp = Interpreter(mem, instr_hook=hook, hook_interval=50)
        interp.launch(kernel, 1, 1, {"flag": flag, "out": out})
        assert mem.read(out, 0) == 99
