"""Edge-case semantics of the interpreter: predication, atomics, types."""

import numpy as np
import pytest

from repro.errors import ExecutionError, MemoryError_
from repro.ptx import CompareOp, DeviceMemory, Interpreter, KernelBuilder


def run(builder, grid=1, block=1, args=None, mem=None):
    mem = mem if mem is not None else DeviceMemory()
    kernel = builder.build()
    Interpreter(mem).launch(kernel, grid, block, args or {})
    return mem


class TestPredication:
    def test_predicated_mov_skipped_when_false(self):
        mem = DeviceMemory()
        out = mem.alloc(1)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        r = b.mov(1)
        p = b.setp(CompareOp.GT, 0, 1)  # false
        b.mov(99, dst=r, pred=p)
        b.st(o, 0, r)
        run(b, args={"out": out}, mem=mem)
        assert mem.read(out, 0) == 1

    def test_negated_predicate_on_store(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        p = b.setp(CompareOp.LT, 1, 2)  # true
        b.st(o, 0, 7, pred=p)
        b.st(o, 1, 7, pred=p, pred_negate=True)  # skipped
        run(b, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [7, 0]

    def test_predicated_branch_both_ways(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        tid = b.mov(b.tid())
        p = b.setp(CompareOp.EQ, tid, 0)
        b.bra("zero", pred=p)
        b.st(o, 1, 20)
        b.ret()
        b.label("zero")
        b.st(o, 0, 10)
        run(b, block=2, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [10, 20]


class TestAtomics:
    def test_shared_atomic_add_across_threads(self):
        mem = DeviceMemory()
        out = mem.alloc(1)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        s = b.shared_buffer("s", 1)
        b.atom_add(s, 0, 1)
        b.bar()
        tid = b.mov(b.tid())
        p = b.setp(CompareOp.EQ, tid, 0)
        b.st(o, 0, b.ld(s, 0), pred=p)
        run(b, block=8, args={"out": out}, mem=mem)
        assert mem.read(out, 0) == 8

    def test_atomic_returns_distinct_tickets(self):
        """Fetch-and-add gives each thread a unique slot — the property
        the PTB task counter relies on."""
        mem = DeviceMemory()
        counter = mem.alloc(1, dtype=np.int64)
        slots = mem.alloc(16)
        b = KernelBuilder("k")
        c = b.ptr_param("counter")
        s = b.ptr_param("slots")
        ticket = b.atom_add(c, 0, 1)
        b.st(s, ticket, 1.0)
        run(b, grid=4, block=4, args={"counter": counter, "slots": slots},
            mem=mem)
        assert list(mem.array(slots)) == [1.0] * 16

    def test_global_atomic_cas_spinlock_pattern(self):
        mem = DeviceMemory()
        lock = mem.alloc(1)
        total = mem.alloc(1)
        b = KernelBuilder("k")
        l = b.ptr_param("lock")
        t = b.ptr_param("total")
        b.label("spin")
        old = b.atom_cas(l, 0, 0, 1)
        p = b.setp(CompareOp.NE, old, 0)
        b.bra("spin", pred=p)
        b.st(t, 0, b.add(b.ld(t, 0), 1))
        b.atom_exch(l, 0, 0)
        run(b, grid=5, block=1, args={"lock": lock, "total": total}, mem=mem)
        assert mem.read(total, 0) == 5


class TestTypeBehaviour:
    def test_mixed_int_float_arithmetic(self):
        mem = DeviceMemory()
        out = mem.alloc(1)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        b.st(o, 0, b.mad(3, 0.5, 1))
        run(b, args={"out": out}, mem=mem)
        assert mem.read(out, 0) == 2.5

    def test_bool_arithmetic_via_and_or(self):
        mem = DeviceMemory()
        out = mem.alloc(2)
        b = KernelBuilder("k")
        o = b.ptr_param("out")
        p = b.setp(CompareOp.LT, 1, 2)
        q = b.setp(CompareOp.LT, 2, 1)
        b.st(o, 0, b.selp(1, 0, b.and_(p, q)))
        b.st(o, 1, b.selp(1, 0, b.or_(p, q)))
        run(b, args={"out": out}, mem=mem)
        assert list(mem.array(out)) == [0, 1]

    def test_non_integral_offset_rejected(self):
        mem = DeviceMemory()
        data = mem.alloc(4)
        b = KernelBuilder("k")
        d = b.ptr_param("data")
        b.st(d, 1.5, 0.0)
        with pytest.raises(ExecutionError, match="integer"):
            run(b, args={"data": data}, mem=mem)

    def test_integral_float_offset_accepted(self):
        """Values round-tripped through f64 shared memory stay usable
        as offsets (the cvt.s32 situation)."""
        mem = DeviceMemory()
        data = mem.alloc(4)
        b = KernelBuilder("k")
        d = b.ptr_param("data")
        b.st(d, 2.0, 9.0)
        run(b, args={"data": data}, mem=mem)
        assert mem.read(data, 2) == 9.0

    def test_load_from_scalar_rejected(self):
        b = KernelBuilder("k")
        n = b.i32_param("n")
        b.ld(n, 0)
        with pytest.raises(MemoryError_, match="non-pointer"):
            run(b, args={"n": 5})
