"""Unit tests for the mini-PTX IR core types."""

import pytest

from repro.ptx import Dim3, Imm, Instr, KernelIR, Opcode, Param, ParamKind, Reg
from repro.ptx.ir import Axis, SharedDecl, Special, SpecialKind


class TestDim3:
    def test_defaults_to_unit_extents(self):
        d = Dim3()
        assert (d.x, d.y, d.z) == (1, 1, 1)
        assert d.total == 1

    def test_total_is_product(self):
        assert Dim3(4, 3, 2).total == 24

    def test_rejects_non_positive_extents(self):
        with pytest.raises(ValueError):
            Dim3(0)
        with pytest.raises(ValueError):
            Dim3(2, -1)

    def test_rejects_non_integer_extents(self):
        with pytest.raises(ValueError):
            Dim3(2.5)  # type: ignore[arg-type]

    def test_linearize_delinearize_roundtrip(self):
        d = Dim3(3, 4, 5)
        for index in range(d.total):
            x, y, z = d.delinearize(index)
            assert d.linearize(x, y, z) == index

    def test_delinearize_out_of_range(self):
        with pytest.raises(ValueError):
            Dim3(2, 2).delinearize(4)
        with pytest.raises(ValueError):
            Dim3(2, 2).delinearize(-1)

    def test_of_coerces_int(self):
        assert Dim3.of(7) == Dim3(7, 1, 1)

    def test_of_coerces_sequence(self):
        assert Dim3.of([2, 3]) == Dim3(2, 3, 1)
        assert Dim3.of((2, 3, 4)) == Dim3(2, 3, 4)

    def test_of_passes_through(self):
        d = Dim3(5)
        assert Dim3.of(d) is d

    def test_of_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            Dim3.of([])
        with pytest.raises(ValueError):
            Dim3.of([1, 2, 3, 4])

    def test_get_by_axis(self):
        d = Dim3(2, 3, 4)
        assert d.get(Axis.X) == 2
        assert d.get(Axis.Y) == 3
        assert d.get(Axis.Z) == 4

    def test_iter_unpacks(self):
        x, y, z = Dim3(6, 7, 8)
        assert (x, y, z) == (6, 7, 8)


class TestKernelIR:
    def _kernel(self) -> KernelIR:
        return KernelIR(
            name="k",
            params=[Param("a", ParamKind.PTR), Param("n", ParamKind.I32)],
            shared=[SharedDecl("buf", 16)],
            body=[
                Instr(Opcode.MOV, dst=Reg("r0"), srcs=(Imm(1),), label="top"),
                Instr(Opcode.RET),
            ],
        )

    def test_param_names(self):
        assert self._kernel().param_names() == ["a", "n"]

    def test_has_param(self):
        k = self._kernel()
        assert k.has_param("a")
        assert not k.has_param("zz")

    def test_labels_map_to_indices(self):
        assert self._kernel().labels() == {"top": 0}

    def test_duplicate_labels_rejected(self):
        k = self._kernel()
        k.body.append(Instr(Opcode.RET, label="top"))
        with pytest.raises(ValueError):
            k.labels()

    def test_copy_is_deep_for_body(self):
        k = self._kernel()
        k2 = k.copy()
        k2.body[0].dst = Reg("changed")
        assert k.body[0].dst == Reg("r0")

    def test_uses_barrier(self):
        k = self._kernel()
        assert not k.uses_barrier()
        k.body.insert(1, Instr(Opcode.BAR))
        assert k.uses_barrier()

    def test_reads_special(self):
        k = self._kernel()
        assert not k.reads_special(SpecialKind.CTAID)
        k.body.insert(0, Instr(
            Opcode.MOV, dst=Reg("r9"),
            srcs=(Special(SpecialKind.CTAID, Axis.X),),
        ))
        assert k.reads_special(SpecialKind.CTAID)
        assert not k.reads_special(SpecialKind.NCTAID)

    def test_fresh_register_avoids_collisions(self):
        k = self._kernel()
        fresh = k.fresh_register("r0")
        assert fresh.name != "r0"

    def test_fresh_label_avoids_collisions(self):
        k = self._kernel()
        assert k.fresh_label("top") != "top"
        assert k.fresh_label("other") == "other"


class TestOperandRendering:
    def test_reg_str(self):
        assert str(Reg("r1")) == "%r1"

    def test_special_str(self):
        assert str(Special(SpecialKind.CTAID, Axis.Y)) == "%ctaid.y"

    def test_param_decl_str(self):
        assert str(Param("x", ParamKind.PTR)) == ".param .ptr x"

    def test_shared_decl_str(self):
        assert str(SharedDecl("s", 32)) == ".shared s[32]"
