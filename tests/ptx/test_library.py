"""Functional tests of the stock kernel corpus."""

import random

import numpy as np
import pytest

from repro.ptx import Interpreter, case_names, make_case
from repro.ptx.library import (
    block_sum,
    dot_product,
    fold_halves,
    matmul_tiled,
    softmax_rows,
)

ALL_CASES = case_names()


class TestCorpusCorrectness:
    @pytest.mark.parametrize("name", ALL_CASES)
    def test_case_matches_reference(self, name):
        case = make_case(name, np.random.default_rng(101))
        Interpreter(case.memory).launch(case.kernel, case.grid, case.block,
                                        case.args)
        case.check()

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_block_order_independence(self, name):
        """CUDA guarantees blocks may run in any order."""
        case = make_case(name, np.random.default_rng(202))
        Interpreter(case.memory).launch(
            case.kernel, case.grid, case.block, case.args,
            shuffle_blocks=random.Random(7),
        )
        case.check()

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_case_factories_are_seed_deterministic(self, name):
        a = make_case(name, np.random.default_rng(5))
        b = make_case(name, np.random.default_rng(5))
        assert a.grid == b.grid
        assert a.block == b.block
        for buffer, want in a.expected.items():
            np.testing.assert_array_equal(want, b.expected[buffer])


class TestFactoriesValidate:
    def test_block_sum_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            block_sum(12)

    def test_dot_product_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            dot_product(9)

    def test_fold_halves_rejects_odd_block(self):
        with pytest.raises(ValueError):
            fold_halves(7)

    def test_softmax_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            softmax_rows(6)

    def test_matmul_tiled_rejects_zero_tile(self):
        with pytest.raises(ValueError):
            matmul_tiled(0)

    def test_unknown_case_name(self):
        with pytest.raises(KeyError):
            make_case("nope")


class TestKernelStructure:
    def test_fold_halves_has_early_return_before_barrier(self):
        """The hazard structure the unified-sync pass exists for."""
        from repro.ptx import Opcode

        kernel = fold_halves(8)
        ops = [i.op for i in kernel.body]
        ret_idx = next(i for i, instr in enumerate(kernel.body)
                       if instr.op is Opcode.RET and instr.pred is not None)
        bar_idx = ops.index(Opcode.BAR)
        assert ret_idx < bar_idx

    def test_softmax_uses_multiple_barriers(self):
        from repro.ptx import Opcode

        kernel = softmax_rows(8)
        bars = sum(1 for i in kernel.body if i.op is Opcode.BAR)
        assert bars >= 4  # two tree reductions with in-loop barriers
