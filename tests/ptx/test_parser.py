"""Tests for the textual mini-PTX parser (including round-trip properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.ptx import (
    Axis,
    CompareOp,
    Imm,
    Interpreter,
    Opcode,
    ParamRef,
    Reg,
    SMemAddr,
    Special,
    SpecialKind,
    case_names,
    format_kernel,
    make_case,
    parse_kernel,
    parse_operand,
)
from repro.transform import make_preemptible, make_sliced, make_unified_sync


class TestParseOperand:
    def test_register(self):
        assert parse_operand("%r12") == Reg("r12")

    def test_special(self):
        assert parse_operand("%ctaid.y") == Special(SpecialKind.CTAID, Axis.Y)
        assert parse_operand("%tid.x") == Special(SpecialKind.TID, Axis.X)

    def test_param(self):
        assert parse_operand("[alpha]") == ParamRef("alpha")

    def test_shared(self):
        assert parse_operand("@shared.tile") == SMemAddr("tile")

    def test_numbers(self):
        assert parse_operand("42") == Imm(42)
        assert parse_operand("-7") == Imm(-7)
        assert parse_operand("2.5") == Imm(2.5)
        assert parse_operand("-1e30") == Imm(-1e30)

    def test_booleans(self):
        assert parse_operand("True") == Imm(True)
        assert parse_operand("False") == Imm(False)

    def test_garbage_rejected(self):
        for bad in ("", "%", "hello world", "[unclosed", "1.2.3"):
            with pytest.raises(ParseError):
                parse_operand(bad)


class TestParseKernel:
    def test_minimal_kernel(self):
        kernel = parse_kernel(".kernel k ()\n{\n    ret;\n}")
        assert kernel.name == "k"
        assert kernel.body[-1].op is Opcode.RET

    def test_params_parsed(self):
        text = """
        .kernel k (.param .ptr x, .param .i32 n)
        {
            ret;
        }
        """
        kernel = parse_kernel(text)
        assert kernel.param_names() == ["x", "n"]

    def test_shared_decl_parsed(self):
        text = """
        .kernel k ()
        {
            .shared tile[32];
            ret;
        }
        """
        kernel = parse_kernel(text)
        assert kernel.shared_names() == ["tile"]
        assert kernel.shared[0].size == 32

    def test_labels_and_branches(self):
        text = """
        .kernel k ()
        {
          loop:
            bra loop;
        }
        """
        kernel = parse_kernel(text)
        assert kernel.labels() == {"loop": 0}

    def test_predicated_instruction(self):
        text = """
        .kernel k (.param .i32 n)
        {
            setp.ge %p, [n], 0;
            @%p ret;
            @!%p ret;
            ret;
        }
        """
        kernel = parse_kernel(text)
        assert kernel.body[1].pred == Reg("p")
        assert not kernel.body[1].pred_negate
        assert kernel.body[2].pred_negate

    def test_brx_table(self):
        text = """
        .kernel k ()
        {
          a:
            nop;
          b:
            brx %i, {a, b};
        }
        """
        kernel = parse_kernel(text, validate=False)
        assert kernel.body[1].targets == ("a", "b")

    def test_setp_comparison_parsed(self):
        kernel = parse_kernel(
            ".kernel k ()\n{\n    setp.ne %p, 1, 2;\n    ret;\n}")
        assert kernel.body[0].cmp is CompareOp.NE

    def test_comments_ignored(self):
        kernel = parse_kernel(
            ".kernel k ()\n{\n    // nothing to see\n    ret;\n}")
        assert len(kernel.body) == 1

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_kernel("")
        with pytest.raises(ParseError, match="header"):
            parse_kernel("not a kernel")
        with pytest.raises(ParseError, match="mnemonic"):
            parse_kernel(".kernel k ()\n{\n    frobnicate;\n}")
        with pytest.raises(ParseError, match="end with"):
            parse_kernel(".kernel k ()\n{\n    ret;")
        with pytest.raises(ParseError, match="parameter"):
            parse_kernel(".kernel k (.param ptr x)\n{\n    ret;\n}")


class TestRoundTrip:
    @pytest.mark.parametrize("name", case_names())
    def test_corpus_round_trips(self, name):
        case = make_case(name, np.random.default_rng(5))
        text = format_kernel(case.kernel)
        assert format_kernel(parse_kernel(text)) == text

    @pytest.mark.parametrize("name", case_names())
    def test_transformed_kernels_round_trip(self, name):
        case = make_case(name, np.random.default_rng(6))
        for variant in (make_sliced(case.kernel).kernel,
                        make_unified_sync(case.kernel).kernel,
                        make_preemptible(case.kernel).kernel):
            text = format_kernel(variant)
            assert format_kernel(parse_kernel(text)) == text

    @given(st.sampled_from(case_names()),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_parsed_kernel_executes_identically(self, name, seed):
        """Parsing the printed text yields a functionally equal kernel."""
        case = make_case(name, np.random.default_rng(seed))
        reparsed = parse_kernel(format_kernel(case.kernel))
        Interpreter(case.memory).launch(reparsed, case.grid, case.block,
                                        case.args)
        case.check()
