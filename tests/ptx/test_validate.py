"""Unit tests for kernel IR validation."""

import pytest

from repro.errors import ValidationError
from repro.ptx import (
    CompareOp,
    Imm,
    Instr,
    KernelIR,
    Opcode,
    Param,
    ParamKind,
    ParamRef,
    Reg,
    validate_kernel,
)
from repro.ptx.ir import SharedDecl, SMemAddr


def _kernel(body, params=(), shared=()):
    return KernelIR("k", list(params), list(shared), list(body))


RET = Instr(Opcode.RET)


class TestValidation:
    def test_valid_minimal_kernel(self):
        validate_kernel(_kernel([RET.copy()]))

    def test_empty_body_rejected(self):
        with pytest.raises(ValidationError, match="empty body"):
            validate_kernel(_kernel([]))

    def test_empty_name_rejected(self):
        k = _kernel([RET.copy()])
        k.name = ""
        with pytest.raises(ValidationError, match="non-empty name"):
            validate_kernel(k)

    def test_wrong_operand_count(self):
        bad = Instr(Opcode.ADD, dst=Reg("r"), srcs=(Imm(1),))
        with pytest.raises(ValidationError, match="source operands"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_missing_dst(self):
        bad = Instr(Opcode.ADD, srcs=(Imm(1), Imm(2)))
        with pytest.raises(ValidationError, match="destination"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_unexpected_dst(self):
        bad = Instr(Opcode.BAR, dst=Reg("r"))
        with pytest.raises(ValidationError, match="unexpected destination"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_setp_needs_cmp(self):
        bad = Instr(Opcode.SETP, dst=Reg("p"), srcs=(Imm(1), Imm(2)))
        with pytest.raises(ValidationError, match="comparison"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_cmp_only_on_setp(self):
        bad = Instr(Opcode.ADD, dst=Reg("r"), srcs=(Imm(1), Imm(2)),
                    cmp=CompareOp.LT)
        with pytest.raises(ValidationError, match="cmp only valid"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_undefined_branch_target(self):
        bad = Instr(Opcode.BRA, target="nowhere")
        with pytest.raises(ValidationError, match="undefined label"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_undefined_brx_target(self):
        bad = Instr(Opcode.BRX, targets=("nowhere",), srcs=(Imm(0),))
        with pytest.raises(ValidationError, match="undefined label"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_empty_brx_table(self):
        bad = Instr(Opcode.BRX, srcs=(Imm(0),))
        with pytest.raises(ValidationError, match="label table"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_predication_limited_to_allowed_ops(self):
        bad = Instr(Opcode.ADD, dst=Reg("r"), srcs=(Imm(1), Imm(2)),
                    pred=Reg("p"))
        with pytest.raises(ValidationError, match="cannot be predicated"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_undeclared_param_read(self):
        bad = Instr(Opcode.MOV, dst=Reg("r"), srcs=(ParamRef("ghost"),))
        with pytest.raises(ValidationError, match="undeclared parameter"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_undeclared_shared_read(self):
        bad = Instr(Opcode.MOV, dst=Reg("r"), srcs=(SMemAddr("ghost"),))
        with pytest.raises(ValidationError, match="undeclared shared"):
            validate_kernel(_kernel([bad, RET.copy()]))

    def test_duplicate_params_rejected(self):
        params = [Param("n", ParamKind.I32), Param("n", ParamKind.F32)]
        with pytest.raises(ValidationError, match="duplicate parameters"):
            validate_kernel(_kernel([RET.copy()], params=params))

    def test_duplicate_shared_rejected(self):
        shared = [SharedDecl("s", 2), SharedDecl("s", 4)]
        with pytest.raises(ValidationError, match="duplicate shared"):
            validate_kernel(_kernel([RET.copy()], shared=shared))

    def test_fall_through_rejected(self):
        body = [Instr(Opcode.MOV, dst=Reg("r"), srcs=(Imm(1),))]
        with pytest.raises(ValidationError, match="fall through"):
            validate_kernel(_kernel(body))

    def test_predicated_ret_cannot_end_body(self):
        body = [Instr(Opcode.RET, pred=Reg("p"))]
        with pytest.raises(ValidationError, match="fall through"):
            validate_kernel(_kernel(body))

    def test_unconditional_bra_can_end_body(self):
        body = [Instr(Opcode.BRA, target="top", label="top")]
        validate_kernel(_kernel(body))
