"""Unit tests for the CUDA-like runtime API facade."""

import numpy as np
import pytest

from repro.errors import RuntimeAPIError
from repro.ptx.library import vector_add
from repro.runtime import CudaRuntime, FatBinary


@pytest.fixture
def runtime():
    rt = CudaRuntime()
    rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
    return rt


class TestDeviceManagement:
    def test_default_device(self, runtime):
        assert runtime.get_device() == 0

    def test_set_device_roundtrip(self):
        rt = CudaRuntime(num_devices=4)
        rt.set_device(3)
        assert rt.get_device() == 3

    def test_invalid_device_rejected(self, runtime):
        with pytest.raises(RuntimeAPIError):
            runtime.set_device(5)

    def test_device_count(self):
        assert CudaRuntime(num_devices=8).get_device_count() == 8

    def test_api_calls_counted(self, runtime):
        runtime.get_device()
        runtime.get_device()
        assert runtime.api_calls["cudaGetDevice"] == 2


class TestStreams:
    def test_stream_lifecycle(self, runtime):
        s = runtime.stream_create()
        assert s != 0
        runtime.stream_synchronize(s)
        runtime.stream_destroy(s)
        with pytest.raises(RuntimeAPIError):
            runtime.stream_synchronize(s)

    def test_default_stream_cannot_be_destroyed(self, runtime):
        with pytest.raises(RuntimeAPIError):
            runtime.stream_destroy(0)

    def test_launch_on_unknown_stream_rejected(self, runtime):
        with pytest.raises(RuntimeAPIError):
            runtime.launch_kernel("vector_add", 1, 1, {}, stream=99)


class TestMemoryAndLaunch:
    def test_end_to_end_computation(self, runtime):
        n = 50
        x = np.arange(n, dtype=float)
        y = np.ones(n)
        dx, dy, dout = (runtime.malloc(n) for _ in range(3))
        runtime.memcpy_h2d(dx, x)
        runtime.memcpy_h2d(dy, y)
        runtime.launch_kernel("vector_add", (4,), (16,),
                              {"x": dx, "y": dy, "out": dout, "n": n})
        np.testing.assert_allclose(runtime.memcpy_d2h(dout, n), x + 1)

    def test_launch_missing_args_rejected(self, runtime):
        with pytest.raises(RuntimeAPIError, match="missing"):
            runtime.launch_kernel("vector_add", (1,), (1,), {})

    def test_launch_unknown_kernel_rejected(self, runtime):
        with pytest.raises(RuntimeAPIError):
            runtime.launch_kernel("ghost", (1,), (1,), {})

    def test_free_then_use_rejected(self, runtime):
        ref = runtime.malloc(4)
        runtime.free(ref)
        with pytest.raises(RuntimeAPIError):
            runtime.memcpy_d2h(ref, 4)

    def test_oversized_copy_rejected(self, runtime):
        ref = runtime.malloc(4)
        with pytest.raises(RuntimeAPIError):
            runtime.memcpy_h2d(ref, np.zeros(10))

    def test_malloc_invalid_size(self, runtime):
        with pytest.raises(RuntimeAPIError):
            runtime.malloc(0)


class TestMemoryManagerAccounting:
    def test_live_buffers_tracked(self):
        from repro.runtime import MemoryManager

        mm = MemoryManager()
        a = mm.malloc(10)
        b = mm.malloc(20)
        assert mm.live_buffers() == 2
        assert mm.live_bytes() == 30
        mm.free(a)
        assert mm.live_buffers() == 1
        mm.free(b)
        assert mm.live_bytes() == 0

    def test_memset(self):
        from repro.runtime import MemoryManager

        mm = MemoryManager()
        ref = mm.malloc(5)
        mm.memset(ref, 7.0, 5)
        np.testing.assert_array_equal(mm.memcpy_d2h(ref, 5), np.full(5, 7.0))
