"""Unit tests for device-code registration."""

import pytest

from repro.errors import RuntimeAPIError
from repro.ptx.library import saxpy, vector_add
from repro.runtime import FatBinary, ModuleRegistry


class TestFatBinary:
    def test_of_builds_and_lists_kernels(self):
        fb = FatBinary.of("bin", [vector_add(), saxpy()])
        assert fb.kernel_names() == ["vector_add", "saxpy"]

    def test_duplicate_kernel_names_rejected(self):
        with pytest.raises(RuntimeAPIError, match="duplicate"):
            FatBinary.of("bin", [vector_add(), vector_add()])


class TestModuleRegistry:
    def test_register_and_lookup(self):
        registry = ModuleRegistry()
        registry.register(FatBinary.of("bin", [vector_add()]))
        kernel = registry.lookup("vector_add")
        assert kernel.name == "vector_add"
        assert "vector_add" in registry
        assert len(registry) == 1

    def test_lookup_unknown_kernel(self):
        with pytest.raises(RuntimeAPIError, match="not registered"):
            ModuleRegistry().lookup("ghost")

    def test_duplicate_binary_rejected(self):
        registry = ModuleRegistry()
        registry.register(FatBinary.of("bin", [vector_add()]))
        with pytest.raises(RuntimeAPIError, match="already registered"):
            registry.register(FatBinary.of("bin", [saxpy()]))

    def test_cross_binary_kernel_clash_rejected(self):
        registry = ModuleRegistry()
        registry.register(FatBinary.of("a", [vector_add()]))
        with pytest.raises(RuntimeAPIError, match="redefines"):
            registry.register(FatBinary.of("b", [vector_add()]))

    def test_kernel_names_sorted(self):
        registry = ModuleRegistry()
        registry.register(FatBinary.of("a", [vector_add(), saxpy()]))
        assert registry.kernel_names() == ["saxpy", "vector_add"]
