"""The docs must only reference module paths that actually import.

Runs the same check CI's docs job runs (tools/check_doc_refs.py):
every ``repro.*`` dotted name in ``docs/*.md`` and ``README.md`` must
resolve to an importable module or an attribute of one.
"""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_checker():
    path = ROOT / "tools" / "check_doc_refs.py"
    spec = importlib.util.spec_from_file_location("check_doc_refs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_doc_references_resolve():
    checker = _load_checker()
    failures = checker.check(ROOT)
    assert not failures, (
        "docs reference module paths that do not import:\n"
        + "\n".join(f"  {path}: {ref}" for path, ref in failures)
    )


def test_checker_catches_bad_refs():
    checker = _load_checker()
    assert checker.resolve("repro.trace.Tracer")
    assert checker.resolve("repro.gpu.device")
    assert not checker.resolve("repro.no_such_module")
    assert not checker.resolve("repro.trace.NoSuchSymbol")
