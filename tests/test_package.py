"""Public API surface smoke tests."""

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_subpackages_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_error_hierarchy_is_catchable(self):
        from repro.errors import (
            ExecutionError,
            GPUSimError,
            HarnessError,
            ParseError,
            PTXError,
            ReproError,
            SchedulerError,
            SyncDivergenceError,
            TransformError,
            ValidationError,
            VirtError,
            WorkloadError,
        )

        for exc in (PTXError, ValidationError, ParseError, ExecutionError,
                    SyncDivergenceError, TransformError, GPUSimError,
                    SchedulerError, VirtError, WorkloadError, HarnessError):
            assert issubclass(exc, ReproError)

    def test_docstrings_on_public_modules(self):
        import repro.baselines
        import repro.core
        import repro.gpu
        import repro.harness
        import repro.ptx
        import repro.transform

        for module in (repro, repro.ptx, repro.transform, repro.gpu,
                       repro.core, repro.baselines, repro.harness):
            assert module.__doc__ and len(module.__doc__) > 40

    def test_quickstart_snippet_from_docstring(self):
        """The usage example in the package docstring actually runs."""
        from repro.harness import JobSpec, RunConfig, run_colocation

        result = run_colocation(
            "Tally",
            [JobSpec.inference("resnet50_infer", load=0.2),
             JobSpec.training("pointnet_train")],
            RunConfig(duration=2.0, warmup=0.5),
        )
        assert result.job("resnet50_infer#0").latency is not None
