"""Tests for the Chrome/Perfetto trace_event export."""

import json

from repro.trace import (
    KernelComplete,
    KernelSubmit,
    PreemptRequest,
    QueueDepth,
    to_chrome_trace,
    write_chrome_trace,
)


def _events():
    return [
        KernelSubmit(ts=0.0, client_id="train#0", kernel="gemm",
                     launch_seq=1, kind="original", priority=1,
                     blocks=64, block_offset=0),
        KernelComplete(ts=0.002, client_id="train#0", kernel="gemm",
                       launch_seq=1, status="completed", blocks_done=64,
                       started_at=0.001, duration=0.001),
        PreemptRequest(ts=0.0015, client_id="train#0", kernel="gemm",
                       launch_seq=1, mechanism="ptb-flag"),
        QueueDepth(ts=0.001, client_id="infer#0", kernel="", depth=3),
        # Never dispatched: must not produce a complete span.
        KernelComplete(ts=0.003, client_id="train#0", kernel="gemm",
                       launch_seq=2, status="preempted", blocks_done=0,
                       started_at=None, duration=None),
    ]


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        for entry in doc["traceEvents"]:
            assert entry["ph"] in ("X", "i", "C", "M")
            assert "pid" in entry
            if entry["ph"] != "M":
                assert "ts" in entry

    def test_complete_event_fields(self):
        doc = to_chrome_trace(_events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1  # undispatched launch draws nothing
        span = spans[0]
        assert span["name"] == "gemm"
        assert span["ts"] == 1000.0  # 0.001 s in microseconds
        assert span["dur"] == 1000.0
        assert isinstance(span["tid"], int)
        assert span["args"]["status"] == "completed"

    def test_instant_and_counter_events(self):
        doc = to_chrome_trace(_events())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert instants[0]["args"]["mechanism"] == "ptb-flag"
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"depth": 3}

    def test_thread_metadata_per_client(self):
        doc = to_chrome_trace(_events())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"train#0", "infer#0"}
        # Distinct clients get distinct tids.
        tids = {e["tid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"}
        assert len(tids) == 2

    def test_strictly_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_events(), path)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        assert "NaN" not in text and "Infinity" not in text
        doc = json.loads(text)
        assert doc["traceEvents"]
        # json.dumps with allow_nan=False is what Perfetto requires.
        json.dumps(doc, allow_nan=False)
