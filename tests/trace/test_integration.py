"""Integration: traced runs emit the right events at the right times."""

import json

from repro.baselines import Priority
from repro.core import Tally, TallyConfig
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.trace import (
    EventType,
    KernelComplete,
    KernelStart,
    KernelSubmit,
    PreemptAck,
    PreemptRequest,
    PtbDispatch,
    Resume,
    SchedDecision,
    Tracer,
    summarize,
    to_chrome_trace,
)


def _of_type(events, cls):
    return [e for e in events if isinstance(e, cls)]


class TestDeviceLifecycle:
    def test_launch_lifecycle_timestamps(self):
        engine = EventLoop()
        tracer = Tracer()
        device = GPUDevice(A100_SXM4_40GB, engine, tracer=tracer)
        from repro.gpu import DeviceLaunch

        kernel = KernelDescriptor("k", num_blocks=64, threads_per_block=128,
                                  block_duration=50e-6)
        device.submit(DeviceLaunch(kernel, client_id="c"))
        engine.run()

        submit, = _of_type(tracer.events, KernelSubmit)
        start, = _of_type(tracer.events, KernelStart)
        complete, = _of_type(tracer.events, KernelComplete)
        assert submit.ts <= start.ts <= complete.ts
        assert submit.launch_seq == start.launch_seq == complete.launch_seq
        assert complete.status == "completed"
        assert complete.started_at == start.ts
        assert complete.duration == complete.ts - start.ts

    def test_disabled_tracer_emits_nothing(self):
        engine = EventLoop()
        device = GPUDevice(A100_SXM4_40GB, engine)
        from repro.gpu import DeviceLaunch

        kernel = KernelDescriptor("k", num_blocks=8, threads_per_block=128,
                                  block_duration=10e-6)
        device.submit(DeviceLaunch(kernel, client_id="c"))
        engine.run()
        assert device.tracer.enabled is False
        assert device.tracer.events == []


class TestTallyPreemption:
    """An HP arrival mid-best-effort execution must show up as
    preempt request (at the arrival instant) -> ack (within one PTB
    iteration) -> resume (after the HP kernel completes)."""

    def _run(self):
        engine = EventLoop()
        tracer = Tracer()
        device = GPUDevice(A100_SXM4_40GB, engine, tracer=tracer)
        # PTB-only candidates make the chosen transform deterministic.
        policy = Tally(device, engine, TallyConfig(
            slice_fractions=(), worker_sm_multiples=(1,)))
        policy.register_client("hp", priority=Priority.HIGH)
        policy.register_client("be", priority=Priority.BEST_EFFORT)

        be_kernel = KernelDescriptor("be_k", num_blocks=1000,
                                     threads_per_block=128,
                                     block_duration=50e-6)
        hp_kernel = KernelDescriptor("hp_k", num_blocks=10,
                                     threads_per_block=128,
                                     block_duration=20e-6)
        hp_arrival = 200e-6
        done = {"be": None, "hp": None}

        def be_done():
            done["be"] = engine.now

        def hp_done():
            done["hp"] = engine.now

        policy.submit("be", be_kernel, be_done)
        engine.schedule_at(
            hp_arrival, lambda: policy.submit("hp", hp_kernel, hp_done))
        engine.run()
        assert done["be"] is not None and done["hp"] is not None
        return tracer.events, hp_arrival, done, be_kernel

    def test_preemption_event_sequence(self):
        events, hp_arrival, done, be_kernel = self._run()

        requests = _of_type(events, PreemptRequest)
        assert len(requests) == 1
        request = requests[0]
        assert request.mechanism == "ptb-flag"
        assert request.client_id == "be"
        # The request fires exactly when the HP kernel arrives...
        assert request.ts == hp_arrival
        # ...and nothing was preempted before that.
        acks = _of_type(events, PreemptAck)
        assert len(acks) == 1
        assert acks[0].ts >= request.ts
        # Turnaround is bounded by one PTB iteration.
        iteration = be_kernel.ptb_iteration_duration()
        assert acks[0].ts - request.ts <= iteration + 1e-12

        resumes = _of_type(events, Resume)
        assert len(resumes) == 1
        assert resumes[0].ts >= done["hp"]
        assert resumes[0].tasks_remaining > 0
        assert resumes[0].transform.startswith("ptb(")

        # Two PTB segments: the original dispatch and the resume.
        dispatches = _of_type(events, PtbDispatch)
        assert [d.segment for d in dispatches] == [1, 2]

    def test_decision_recorded(self):
        events, *_ = self._run()
        decisions = [d for d in _of_type(events, SchedDecision)
                     if d.client_id == "be"]
        assert len(decisions) == 1
        assert decisions[0].transform == "ptb(108)"  # 1 x A100 SMs


class TestColocationTrace:
    def test_tally_colocation_emits_consistent_trace(self):
        config = RunConfig(duration=2.0, warmup=0.5)
        tracer = Tracer(capacity=None)
        jobs = [JobSpec.inference("resnet50_infer", load=0.3),
                JobSpec.training("pointnet_train")]
        result = run_colocation("Tally", jobs, config, tracer=tracer)
        events = tracer.events
        assert tracer.dropped == 0

        seen = {e.type for e in events}
        assert EventType.KERNEL_SUBMIT in seen
        assert EventType.KERNEL_COMPLETE in seen
        assert EventType.SCHED_DECISION in seen
        assert {EventType.SLICE_DISPATCH, EventType.PTB_DISPATCH} & seen
        assert EventType.PREEMPT_REQUEST in seen
        assert EventType.QUEUE_DEPTH in seen

        # Every timestamp lies within the simulated window.
        assert all(0.0 <= e.ts <= config.duration for e in events)

        # Best-effort preemptions coincide exactly with high-priority
        # kernel arrivals (Tally preempts in the submission path).
        hp_submits = {e.ts for e in _of_type(events, KernelSubmit)
                      if e.client_id == "resnet50_infer#0"}
        requests = _of_type(events, PreemptRequest)
        assert requests
        assert all(r.ts in hp_submits for r in requests)

        # Derived counters line up with the events.
        summary = summarize(tracer, config.spec)
        acks = _of_type(events, PreemptAck)
        assert summary.preemptions == len(acks)
        assert summary.clients["resnet50_infer#0"].submitted > 0

        # Latencies reported by the harness are consistent with the
        # per-request spans in the trace: no request can take longer
        # than the whole measurement window.
        inf = result.job("resnet50_infer#0")
        assert inf.latency is not None
        assert inf.latency.max <= config.duration

        # And the export is loadable, strictly valid JSON.
        doc = to_chrome_trace(events)
        json.dumps(doc, allow_nan=False)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_reef_and_time_slicing_emit_decisions(self):
        config = RunConfig(duration=1.0, warmup=0.2)
        jobs = [JobSpec.inference("resnet50_infer", load=0.3),
                JobSpec.training("pointnet_train")]
        transforms = {}
        for policy in ("REEF", "Time-Slicing"):
            tracer = Tracer(capacity=None)
            run_colocation(policy, jobs, config, tracer=tracer)
            transforms[policy] = {
                d.transform for d in tracer.events
                if isinstance(d, SchedDecision)
            }
        assert "reset" in transforms["REEF"]
        assert "context-switch" in transforms["Time-Slicing"]
