"""Tests for the Tracer, its sinks, and event (de)serialization."""

import pytest

from repro.errors import ReproError
from repro.trace import (
    EventType,
    JSONLSink,
    KernelSubmit,
    MemorySink,
    NULL_TRACER,
    QueueDepth,
    Tracer,
    event_from_dict,
    load_jsonl,
)


def _submit_event(i: int) -> KernelSubmit:
    return KernelSubmit(
        ts=float(i), client_id="c", kernel=f"k{i}", launch_seq=i,
        kind="original", priority=1, blocks=4, block_offset=0,
    )


class TestMemorySink:
    def test_receives_events_in_order(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        events = [_submit_event(i) for i in range(5)]
        for e in events:
            tracer.emit(e)
        assert sink.events == events
        assert tracer.events == events
        assert tracer.emitted == 5
        assert tracer.dropped == 0


class TestRingBuffer:
    def test_overflow_keeps_most_recent(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit(_submit_event(i))
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [e.launch_seq for e in tracer.events] == [6, 7, 8, 9]

    def test_sinks_see_dropped_events_too(self):
        sink = MemorySink()
        tracer = Tracer(capacity=2, sinks=[sink])
        for i in range(5):
            tracer.emit(_submit_event(i))
        assert len(sink.events) == 5
        assert len(tracer.events) == 2

    def test_unbounded_capacity(self):
        tracer = Tracer(capacity=None)
        for i in range(100_000):
            tracer.emit(_submit_event(i))
        assert tracer.dropped == 0
        assert len(tracer.events) == 100_000

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ReproError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(_submit_event(0))
        tracer.clear()
        assert tracer.events == []
        assert tracer.emitted == 0


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(_submit_event(0))  # no-op even if called
        assert NULL_TRACER.emitted == 0
        assert NULL_TRACER.events == []

    def test_real_tracer_enabled(self):
        assert Tracer().enabled is True


class TestSerialization:
    def test_to_dict_carries_type(self):
        event = _submit_event(3)
        data = event.to_dict()
        assert data["type"] == EventType.KERNEL_SUBMIT.value
        assert data["kernel"] == "k3"
        assert data["launch_seq"] == 3

    def test_round_trip(self):
        event = QueueDepth(ts=1.5, client_id="svc", kernel="", depth=7)
        assert event_from_dict(event.to_dict()) == event

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"type": "nope", "ts": 0.0})

    def test_missing_type_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"ts": 0.0})

    def test_malformed_fields_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"type": "queue_depth", "ts": 0.0})


class TestJSONLSink:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = [_submit_event(i) for i in range(3)]
        events.append(QueueDepth(ts=9.0, client_id="svc", kernel="",
                                 depth=2))
        with Tracer(sinks=[JSONLSink(path)]) as tracer:
            for e in events:
                tracer.emit(e)
        assert load_jsonl(path) == events

    def test_close_idempotent(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            load_jsonl(str(path))
