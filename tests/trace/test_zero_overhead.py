"""The null-object hot path allocates no instrumentation objects.

Tracing, invariant checking, and fault injection all follow the same
pattern: the device/scheduler hold a disabled singleton whose
``enabled`` flag gates every instrumentation site.  The perf contract
(see ``docs/performance.md``) is that a default run never even
*constructs* a trace event — not "constructs and discards".  These
tests enforce it by making every trace-event constructor raise and
running full simulations through the harness.
"""

import pytest

from repro.check import NULL_CHECKER
from repro.faults import NULL_INJECTOR
from repro.gpu import A100_SXM4_40GB, DeviceLaunch, EventLoop, GPUDevice, \
    KernelDescriptor
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.trace import NULL_TRACER
from repro.trace.events import EVENT_CLASSES


@pytest.fixture
def forbid_trace_events(monkeypatch):
    """Make constructing *any* trace event an immediate test failure."""
    def boom(self, *args, **kwargs):
        raise AssertionError(
            f"{type(self).__name__} constructed on the null-object path"
        )

    for cls in set(EVENT_CLASSES.values()):
        monkeypatch.setattr(cls, "__init__", boom)


class TestNullObjectAllocations:
    def test_device_run_builds_no_trace_events(self, forbid_trace_events):
        engine = EventLoop()
        device = GPUDevice(A100_SXM4_40GB, engine)
        launch = DeviceLaunch(
            KernelDescriptor("k", num_blocks=5000, threads_per_block=256,
                             block_duration=30e-6),
            client_id="a",
        )
        device.submit(launch)
        engine.schedule(0.5e-3, lambda: device.preempt(launch))
        engine.run()
        assert launch.done

    def test_colocation_run_builds_no_trace_events(self, forbid_trace_events):
        config = RunConfig(duration=0.5, warmup=0.1)
        result = run_colocation(
            "Tally",
            [JobSpec.inference("bert_infer", load=0.5),
             JobSpec.training("whisper_train")],
            config,
        )
        assert result.events > 0
        assert result.job("bert_infer#0").completed > 0

    def test_default_device_holds_the_null_singletons(self):
        device = GPUDevice(A100_SXM4_40GB, EventLoop())
        assert device.tracer is NULL_TRACER
        assert device.check is NULL_CHECKER
        assert not device.tracer.enabled
        assert not device.check.enabled
        assert not NULL_INJECTOR.enabled

    def test_sabotaged_constructors_do_fire_when_tracing(
            self, forbid_trace_events):
        # Sanity check on the fixture itself: with a real tracer the
        # same workload must trip the sabotaged constructors.
        from repro.trace import Tracer

        config = RunConfig(duration=0.2, warmup=0.0)
        with pytest.raises(AssertionError, match="constructed"):
            run_colocation(
                "Tally", [JobSpec.inference("bert_infer", load=0.3)],
                config, tracer=Tracer(),
            )
