"""Tests for the synthetic traffic generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.traffic import (
    TrafficTrace,
    bursty_trace,
    maf_trace,
    poisson_trace,
    profile_trace,
    rate_for_load,
)


class TestTrafficTrace:
    def test_validates_sorted_within_horizon(self):
        with pytest.raises(WorkloadError):
            TrafficTrace(np.array([2.0, 1.0]), horizon=10.0)
        with pytest.raises(WorkloadError):
            TrafficTrace(np.array([5.0, 11.0]), horizon=10.0)
        with pytest.raises(WorkloadError):
            TrafficTrace(np.array([-1.0]), horizon=10.0)

    def test_offered_load(self):
        trace = TrafficTrace(np.linspace(0, 9.99, 100), horizon=10.0)
        assert trace.mean_rate == pytest.approx(10.0)
        assert trace.offered_load(0.05) == pytest.approx(0.5)


class TestRateForLoad:
    def test_basic(self):
        assert rate_for_load(0.5, 4e-3) == pytest.approx(125.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            rate_for_load(0.0, 1e-3)
        with pytest.raises(WorkloadError):
            rate_for_load(1.5, 1e-3)
        with pytest.raises(WorkloadError):
            rate_for_load(0.5, 0.0)


class TestPoisson:
    def test_mean_rate_close_to_target(self):
        trace = poisson_trace(100.0, 50.0, seed=1)
        assert trace.mean_rate == pytest.approx(100.0, rel=0.1)

    def test_deterministic_by_seed(self):
        a = poisson_trace(50.0, 10.0, seed=3)
        b = poisson_trace(50.0, 10.0, seed=3)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)


class TestBursty:
    @given(load=st.sampled_from([0.1, 0.3, 0.5, 0.8]),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_average_load_hits_target(self, load, seed):
        service = 4e-3
        trace = bursty_trace(load, service, 200.0, seed=seed)
        assert trace.offered_load(service) == pytest.approx(load, rel=0.3)

    def test_burstiness_visible_at_low_load(self):
        trace = bursty_trace(0.1, 4e-3, 120.0, burst_ratio=20.0, seed=5)
        counts, _ = np.histogram(trace.arrivals,
                                 bins=np.arange(0, 121, 1.0))
        assert counts.max() > 3 * max(counts.mean(), 1.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bursty_trace(0.5, 4e-3, 10.0, burst_ratio=0.5)


class TestMAFReplay:
    @given(load=st.sampled_from([0.1, 0.3, 0.5, 0.7]),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_average_load_hits_target(self, load, seed):
        service = 4e-3
        trace = maf_trace(load, service, 180.0, seed=seed)
        assert trace.offered_load(service) == pytest.approx(load, rel=0.3)

    def test_arrivals_evenly_spaced_within_seconds(self):
        """The property that keeps the ideal service queue-free."""
        trace = maf_trace(0.5, 4e-3, 30.0, spike_probability=0.0, seed=2)
        in_second = trace.arrivals[(trace.arrivals >= 3.0)
                                   & (trace.arrivals < 4.0)]
        gaps = np.diff(in_second)
        assert gaps.max() < 3.0 * gaps.mean()

    def test_spikes_capped_below_capacity(self):
        service = 4e-3
        trace = maf_trace(0.3, service, 120.0, spike_probability=0.05,
                          spike_ratio=50.0, seed=4)
        counts, _ = np.histogram(trace.arrivals,
                                 bins=np.arange(0, 121, 1.0))
        assert counts.max() <= 1.1 * 0.9 / service

    def test_validation(self):
        with pytest.raises(WorkloadError):
            maf_trace(0.5, 4e-3, 10.0, base_fraction=0.0)
        with pytest.raises(WorkloadError):
            maf_trace(0.5, 4e-3, 10.0, spike_ratio=0.5)
        with pytest.raises(WorkloadError):
            maf_trace(0.5, 4e-3, 10.0, spike_probability=2.0)


class TestProfile:
    def test_segment_rates_respected(self):
        trace = profile_trace([100.0, 0.0, 100.0], 5.0, seed=6)
        assert trace.horizon == pytest.approx(15.0)
        middle = trace.arrivals[(trace.arrivals >= 5.0)
                                & (trace.arrivals < 10.0)]
        assert len(middle) == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            profile_trace([], 1.0)
        with pytest.raises(WorkloadError):
            profile_trace([1.0], 0.0)
        with pytest.raises(WorkloadError):
            profile_trace([-1.0], 1.0)
