"""Tests for dead-code elimination."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ptx import (
    CompareOp,
    Interpreter,
    KernelBuilder,
    Opcode,
    case_names,
    make_case,
)
from repro.transform import make_preemptible, make_sliced
from repro.transform.dce import eliminate_dead_code


class TestBasicElimination:
    def test_unused_computation_removed(self):
        b = KernelBuilder("k")
        out = b.ptr_param("out")
        dead = b.add(1, 2)        # never read
        b.mul(dead, 3)            # reads dead, but result also never read
        kept = b.add(10, 20)
        b.st(out, 0, kept)
        kernel = b.build()
        optimized, stats = eliminate_dead_code(kernel)
        assert stats.instructions_removed == 2
        ops = [i.op for i in optimized.body]
        assert ops.count(Opcode.ADD) == 1

    def test_transitively_dead_chains_removed(self):
        b = KernelBuilder("k")
        a = b.mov(1)
        c = b.add(a, 1)
        d = b.mul(c, 2)
        _e = b.sub(d, 3)  # end of a chain nobody reads
        kernel = b.build()
        optimized, stats = eliminate_dead_code(kernel)
        assert stats.instructions_removed == 4
        assert stats.iterations >= 1

    def test_stores_and_atomics_never_removed(self):
        b = KernelBuilder("k")
        out = b.ptr_param("out")
        b.st(out, 0, 1)
        b.atom_add(out, 0, 1)  # fetched old value is dead; effect is not
        kernel = b.build()
        optimized, _stats = eliminate_dead_code(kernel)
        ops = [i.op for i in optimized.body]
        assert Opcode.ST in ops
        assert Opcode.ATOM_ADD in ops

    def test_predicate_registers_are_live(self):
        b = KernelBuilder("k")
        out = b.ptr_param("out")
        p = b.setp(CompareOp.LT, 1, 2)
        b.st(out, 0, 1, pred=p)
        kernel = b.build()
        optimized, stats = eliminate_dead_code(kernel)
        assert any(i.op is Opcode.SETP for i in optimized.body)

    def test_loop_carried_values_are_live(self):
        """A register read by a back-edge must survive."""
        b = KernelBuilder("k")
        out = b.ptr_param("out")
        i = b.mov(0)
        loop, done = b.fresh_label("loop"), b.fresh_label("done")
        b.label(loop)
        b.bra(done, pred=b.setp(CompareOp.GE, i, 5))
        b.add(i, 1, dst=i)
        b.bra(loop)
        b.label(done)
        b.st(out, 0, i)
        kernel = b.build()
        optimized, stats = eliminate_dead_code(kernel)
        # Nothing essential removed: the loop still counts to 5.
        from repro.ptx import DeviceMemory

        mem = DeviceMemory()
        ref = mem.alloc(1)
        Interpreter(mem).launch(optimized, 1, 1, {"out": ref})
        assert mem.read(ref, 0) == 5

    def test_labelled_dead_instruction_kept(self):
        """A dead write that is a branch target must not be removed
        (it would orphan the label)."""
        b = KernelBuilder("k")
        b.bra("target")
        b.label("target")
        b.add(1, 2)  # dead, but labelled
        kernel = b.build()
        optimized, stats = eliminate_dead_code(kernel)
        assert "target" in optimized.labels()


class TestSemanticsPreserved:
    @pytest.mark.parametrize("name", case_names())
    def test_corpus_unchanged_behaviour(self, name):
        case = make_case(name, np.random.default_rng(88))
        optimized, _stats = eliminate_dead_code(case.kernel)
        Interpreter(case.memory).launch(optimized, case.grid, case.block,
                                        case.args)
        case.check()

    @given(st.sampled_from(case_names()),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_transformed_kernels_still_correct(self, name, seed):
        case = make_case(name, np.random.default_rng(seed))
        pk = make_preemptible(case.kernel)
        optimized, _stats = eliminate_dead_code(pk.kernel)
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)
        Interpreter(case.memory).launch(optimized, pk.worker_grid(3),
                                        case.block, args)
        case.check()

    def test_sliced_kernels_shed_unused_axis_math(self):
        """1-D kernels never read ctaid.y/z; slicing still computes the
        virtual vy/vz — DCE reclaims them."""
        case = make_case("vector_add", np.random.default_rng(4))
        sliced = make_sliced(case.kernel)
        optimized, stats = eliminate_dead_code(sliced.kernel)
        assert stats.instructions_removed >= 2  # vy/vz reconstruction
        interp = Interpreter(case.memory)
        for launch in sliced.plan(case.grid, 2):
            args = sliced.args_for(case.args, case.grid, launch.offset)
            interp.launch(optimized, launch.grid, case.block, args)
        case.check()
