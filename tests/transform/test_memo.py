"""The content-addressed transform memo: LRU, stats, snapshots."""

import pickle

import pytest

from repro.transform.memo import (
    DEFAULT_CAPACITY,
    TransformMemo,
    load_snapshot,
    transform_memo,
    warm_snapshot,
)


class TestLRU:
    def test_get_counts_hits_and_misses(self):
        memo = TransformMemo()
        assert memo.get("absent") is None
        memo.put("k", "artifact")
        assert memo.get("k") == "artifact"
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.hit_rate == 0.5
        assert memo.lookups == 2

    def test_capacity_evicts_least_recently_used(self):
        memo = TransformMemo(capacity=2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")  # a is now most recently used
        memo.put("c", 3)  # evicts b
        assert "b" not in memo
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        assert memo.evictions == 1
        assert len(memo) == 2

    def test_unbounded_when_capacity_none(self):
        memo = TransformMemo(capacity=None)
        for i in range(DEFAULT_CAPACITY + 10):
            memo.put(i, i)
        assert len(memo) == DEFAULT_CAPACITY + 10
        assert memo.evictions == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TransformMemo(capacity=0)

    def test_clear_resets_entries_and_counters(self):
        memo = TransformMemo()
        memo.put("k", 1)
        memo.get("k")
        memo.get("gone")
        memo.clear()
        assert len(memo) == 0
        assert (memo.hits, memo.misses, memo.evictions) == (0, 0, 0)
        assert memo.hit_rate == 0.0


class TestSnapshot:
    def test_roundtrips_through_pickle(self):
        from repro.ptx.library import vector_add
        from repro.transform import TransformPipeline

        memo = TransformMemo()
        pipeline = TransformPipeline(memo=memo)
        sliced = pipeline.sliced(vector_add())

        restored = TransformMemo()
        restored.load(pickle.loads(pickle.dumps(memo.snapshot())))
        key = next(iter(memo.snapshot()[1]))
        cached = restored.get(key)
        assert cached.kernel.name == sliced.kernel.name
        assert [str(i) for i in cached.kernel.body] \
            == [str(i) for i in sliced.kernel.body]

    def test_load_keeps_existing_entries_by_default(self):
        memo = TransformMemo()
        memo.put("k", "mine")
        donor = TransformMemo()
        donor.put("k", "theirs")
        donor.put("other", "new")
        added = memo.load(donor.snapshot())
        assert added == 1
        assert memo.get("k") == "mine"
        assert memo.get("other") == "new"

    def test_load_replace_clobbers(self):
        memo = TransformMemo()
        memo.put("k", "mine")
        donor = TransformMemo()
        donor.put("k", "theirs")
        memo.load(donor.snapshot(), replace=True)
        assert memo.get("k") == "theirs"


class TestProcessWideStore:
    @pytest.fixture(autouse=True)
    def fresh_global(self, monkeypatch):
        import repro.transform.memo as memo_module

        monkeypatch.setattr(memo_module, "_GLOBAL_MEMO", TransformMemo())

    def test_transform_memo_is_a_singleton(self):
        assert transform_memo() is transform_memo()

    def test_warm_snapshot_none_when_cold(self):
        assert warm_snapshot() is None
        assert load_snapshot(None) == 0  # a no-op, e.g. cold pool parent

    def test_snapshot_load_roundtrip(self):
        transform_memo().put("k", "v")
        snap = warm_snapshot()
        assert snap is not None
        transform_memo().clear()
        assert load_snapshot(snap) == 1
        assert transform_memo().get("k") == "v"
