"""Tests for the peephole cleanup pass."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ptx import (
    Interpreter,
    KernelBuilder,
    Opcode,
    case_names,
    make_case,
    validate_kernel,
)
from repro.transform import make_preemptible, make_sliced, make_unified_sync
from repro.transform.peephole import peephole_optimize


class TestNopElision:
    def test_plain_nops_removed(self):
        b = KernelBuilder("k")
        b.nop()
        b.mov(1)
        b.nop()
        kernel = b.build()
        optimized, stats = peephole_optimize(kernel)
        assert stats.nops_removed == 2
        assert all(i.op is not Opcode.NOP for i in optimized.body)

    def test_labelled_nop_migrates_label(self):
        b = KernelBuilder("k")
        b.bra("target")
        b.label("target")
        b.nop()
        b.mov(1)
        kernel = b.build()
        optimized, _stats = peephole_optimize(kernel)
        labels = optimized.labels()
        assert "target" in labels
        assert optimized.body[labels["target"]].op is Opcode.MOV

    def test_label_run_collapses_with_alias_rewrite(self):
        b = KernelBuilder("k")
        b.bra("a")
        b.label("a")
        b.nop()
        b.label("b")
        b.nop()
        b.mov(1)
        b.bra("b")
        kernel = b.build(validate=True)
        optimized, _stats = peephole_optimize(kernel)
        # Both labels resolved to one survivor and references follow.
        validate_kernel(optimized)
        names = {i.target for i in optimized.body if i.target}
        assert len(names) == 1

    def test_trailing_labelled_nop_keeps_carrier(self):
        b = KernelBuilder("k")
        b.bra("end")
        b.label("end")
        kernel = b.build()  # build appends NOP carrier + ret
        optimized, _stats = peephole_optimize(kernel)
        validate_kernel(optimized)
        assert "end" in optimized.labels()


class TestUnreachableRemoval:
    def test_code_after_unconditional_ret_removed(self):
        b = KernelBuilder("k")
        b.ret()
        b.mov(42)  # unreachable
        b.ret()
        kernel = b.build(validate=False)
        optimized, stats = peephole_optimize(kernel)
        assert stats.unreachable_removed == 2
        assert len(optimized.body) == 1

    def test_brx_targets_stay_reachable(self):
        b = KernelBuilder("k")
        sel = b.i32_param("sel")
        b.brx(["a", "b"], sel)
        b.label("a")
        b.ret()
        b.label("b")
        b.ret()
        kernel = b.build(validate=False)
        optimized, stats = peephole_optimize(kernel)
        assert stats.unreachable_removed <= 1  # only the builder's ret
        assert {"a", "b"} <= set(optimized.labels())

    def test_predicated_ret_keeps_fallthrough(self):
        b = KernelBuilder("k")
        p = b.setp_reg = b.setp(__import__("repro.ptx", fromlist=["CompareOp"]).CompareOp.LT, 1, 2)
        b.ret(pred=p)
        b.mov(5)
        kernel = b.build()
        optimized, stats = peephole_optimize(kernel)
        assert any(i.op is Opcode.MOV for i in optimized.body)


class TestSemanticsPreserved:
    @pytest.mark.parametrize("name", case_names())
    def test_corpus_unchanged_behaviour(self, name):
        case = make_case(name, np.random.default_rng(77))
        optimized, _stats = peephole_optimize(case.kernel)
        Interpreter(case.memory).launch(optimized, case.grid, case.block,
                                        case.args)
        case.check()

    @given(st.sampled_from(case_names()),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimized_transformed_kernels_still_correct(self, name, seed):
        case = make_case(name, np.random.default_rng(seed))
        pk = make_preemptible(case.kernel)
        optimized, stats = peephole_optimize(pk.kernel)
        assert stats.total_removed >= 0
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)
        Interpreter(case.memory).launch(optimized, pk.worker_grid(2),
                                        case.block, args)
        case.check()

    def test_transformed_kernels_do_shrink(self):
        """The PTB pipeline leaves NOP carriers and an unreachable
        safety ret that the optimizer reclaims (slicing emits neither)."""
        case = make_case("softmax_rows", np.random.default_rng(1))
        for variant in (make_unified_sync(case.kernel).kernel,
                        make_preemptible(case.kernel).kernel):
            optimized, stats = peephole_optimize(variant)
            assert stats.total_removed > 0
            assert optimized.instruction_count() < variant.instruction_count()
        sliced = make_sliced(case.kernel).kernel
        optimized, stats = peephole_optimize(sliced)
        assert optimized.instruction_count() <= sliced.instruction_count()
