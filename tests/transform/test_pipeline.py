"""Tests for the transformation pipeline cache."""

import gc

import numpy as np

from repro.ptx import make_case
from repro.ptx.library import saxpy, vector_add
from repro.transform import TransformMemo, TransformPipeline


class TestPipelineCaching:
    def test_sliced_is_cached(self):
        pipeline = TransformPipeline()
        case = make_case("vector_add", np.random.default_rng(1))
        a = pipeline.sliced(case.kernel)
        b = pipeline.sliced(case.kernel)
        assert a is b
        assert pipeline.stats.sliced == 1
        assert pipeline.stats.cache_hits == 1

    def test_preemptible_is_cached_per_mode(self):
        pipeline = TransformPipeline()
        case = make_case("vector_add", np.random.default_rng(2))
        safe = pipeline.preemptible(case.kernel)
        naive = pipeline.preemptible(case.kernel, unified_sync=False)
        assert safe is not naive
        assert pipeline.preemptible(case.kernel) is safe
        assert pipeline.stats.preemptible == 2

    def test_unified_sync_is_cached(self):
        pipeline = TransformPipeline()
        case = make_case("block_sum", np.random.default_rng(3))
        a = pipeline.unified_sync(case.kernel)
        assert pipeline.unified_sync(case.kernel) is a
        assert pipeline.stats.unified_sync == 1

    def test_distinct_kernels_not_conflated(self):
        pipeline = TransformPipeline()
        a = make_case("vector_add", np.random.default_rng(4))
        b = make_case("saxpy", np.random.default_rng(4))
        sa = pipeline.sliced(a.kernel)
        sb = pipeline.sliced(b.kernel)
        assert sa is not sb
        assert pipeline.stats.sliced == 2

    def test_stats_track_misses_and_hit_rate(self):
        pipeline = TransformPipeline()
        kernel = vector_add()
        pipeline.sliced(kernel)
        pipeline.sliced(kernel)
        pipeline.preemptible(kernel)
        assert pipeline.stats.cache_misses == 2
        assert pipeline.stats.cache_hits == 1
        assert pipeline.stats.lookups == 3
        assert pipeline.stats.hit_rate == 1 / 3
        assert TransformPipeline().stats.hit_rate == 0.0  # idle, no 0/0


class TestContentAddressing:
    """The cache is keyed on kernel content, never object identity."""

    def test_equal_content_different_objects_share_artifact(self):
        # Two independently built kernels with identical IR: the old
        # id()-keyed cache compiled both; content keys compile once.
        pipeline = TransformPipeline()
        a = pipeline.sliced(vector_add())
        b = pipeline.sliced(vector_add())
        assert a is b
        assert pipeline.stats.sliced == 1
        assert pipeline.stats.cache_hits == 1

    def test_pipelines_sharing_a_memo_share_artifacts(self):
        memo = TransformMemo()
        first = TransformPipeline(memo=memo).sliced(vector_add())
        again = TransformPipeline(memo=memo)
        assert again.sliced(vector_add()) is first
        assert again.stats.cache_hits == 1
        assert again.stats.sliced == 0

    def test_private_memos_stay_independent(self):
        a = TransformPipeline()
        b = TransformPipeline()
        a.sliced(vector_add())
        b.sliced(vector_add())
        assert b.stats.cache_misses == 1  # no cross-pipeline leakage

    def test_optimize_flag_is_part_of_the_key(self):
        memo = TransformMemo()
        optimized = TransformPipeline(memo=memo, optimize=True)
        raw = TransformPipeline(memo=memo, optimize=False)
        assert optimized.sliced(vector_add()) \
            is not raw.sliced(vector_add())

    def test_reclaimed_id_never_serves_a_stale_hash(self):
        """Regression: CPython reuses id() after GC.

        The identity-keyed cache returned kernel A's transformed
        variant for a *different* kernel B that happened to be
        allocated at A's recycled address.  The identity fast path must
        be reaped when the kernel dies, and a kernel reusing the id
        must transform from its own content.
        """
        pipeline = TransformPipeline()
        kernel = vector_add()
        stale_id = id(kernel)
        sliced_a = pipeline.sliced(kernel)
        assert stale_id in pipeline._hash_by_id
        del kernel, sliced_a
        gc.collect()
        # The weakref reaper fires during deallocation — before the id
        # can be handed to any new object.
        assert stale_id not in pipeline._hash_by_id
        assert not pipeline._reapers
        # Force allocation churn; if CPython hands out the same id, the
        # new kernel must still be transformed from its own IR.
        for _ in range(256):
            other = saxpy()
            if id(other) == stale_id:
                break
        sliced_b = pipeline.sliced(other)
        assert sliced_b.kernel.name.endswith("saxpy__sliced") \
            or "saxpy" in sliced_b.kernel.name
