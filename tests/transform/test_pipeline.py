"""Tests for the transformation pipeline cache."""

import numpy as np

from repro.ptx import make_case
from repro.transform import TransformPipeline


class TestPipelineCaching:
    def test_sliced_is_cached(self):
        pipeline = TransformPipeline()
        case = make_case("vector_add", np.random.default_rng(1))
        a = pipeline.sliced(case.kernel)
        b = pipeline.sliced(case.kernel)
        assert a is b
        assert pipeline.stats.sliced == 1
        assert pipeline.stats.cache_hits == 1

    def test_preemptible_is_cached_per_mode(self):
        pipeline = TransformPipeline()
        case = make_case("vector_add", np.random.default_rng(2))
        safe = pipeline.preemptible(case.kernel)
        naive = pipeline.preemptible(case.kernel, unified_sync=False)
        assert safe is not naive
        assert pipeline.preemptible(case.kernel) is safe
        assert pipeline.stats.preemptible == 2

    def test_unified_sync_is_cached(self):
        pipeline = TransformPipeline()
        case = make_case("block_sum", np.random.default_rng(3))
        a = pipeline.unified_sync(case.kernel)
        assert pipeline.unified_sync(case.kernel) is a
        assert pipeline.stats.unified_sync == 1

    def test_distinct_kernels_not_conflated(self):
        pipeline = TransformPipeline()
        a = make_case("vector_add", np.random.default_rng(4))
        b = make_case("saxpy", np.random.default_rng(4))
        sa = pipeline.sliced(a.kernel)
        sb = pipeline.sliced(b.kernel)
        assert sa is not sb
        assert pipeline.stats.sliced == 2
