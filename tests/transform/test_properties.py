"""Property-based tests: transformations preserve kernel semantics.

Hypothesis drives random problem instances, random slice sizes, random
worker counts, random block execution orders, and random preemption
points; the invariant is always the same — the transformed execution
produces exactly the output of the original kernel.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ptx import Interpreter, case_names, make_case
from repro.transform import make_preemptible, make_sliced, make_unified_sync

CASES = case_names()

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def case_and_seed(draw):
    name = draw(st.sampled_from(CASES))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return name, seed


class TestSlicingProperties:
    @given(case_and_seed(), st.integers(min_value=1, max_value=64))
    @_settings
    def test_any_slice_size_preserves_semantics(self, case_seed, slice_size):
        name, seed = case_seed
        case = make_case(name, np.random.default_rng(seed))
        sliced = make_sliced(case.kernel)
        interp = Interpreter(case.memory)
        for launch in sliced.plan(case.grid, slice_size):
            args = sliced.args_for(case.args, case.grid, launch.offset)
            interp.launch(sliced.kernel, launch.grid, case.block, args)
        case.check()

    @given(case_and_seed(), st.integers(min_value=1, max_value=8),
           st.randoms(use_true_random=False))
    @_settings
    def test_slice_order_irrelevant(self, case_seed, slice_size, rnd):
        name, seed = case_seed
        case = make_case(name, np.random.default_rng(seed))
        sliced = make_sliced(case.kernel)
        launches = sliced.plan(case.grid, slice_size)
        rnd.shuffle(launches)
        interp = Interpreter(case.memory)
        for launch in launches:
            args = sliced.args_for(case.args, case.grid, launch.offset)
            interp.launch(sliced.kernel, launch.grid, case.block, args)
        case.check()


class TestUnifiedSyncProperties:
    @given(case_and_seed(), st.randoms(use_true_random=False))
    @_settings
    def test_semantics_under_random_block_order(self, case_seed, rnd):
        name, seed = case_seed
        case = make_case(name, np.random.default_rng(seed))
        usync = make_unified_sync(case.kernel)
        Interpreter(case.memory).launch(
            usync.kernel, case.grid, case.block, case.args,
            shuffle_blocks=rnd,
        )
        case.check()


class TestPTBProperties:
    @given(case_and_seed(), st.integers(min_value=1, max_value=12))
    @_settings
    def test_any_worker_count_preserves_semantics(self, case_seed, workers):
        name, seed = case_seed
        case = make_case(name, np.random.default_rng(seed))
        pk = make_preemptible(case.kernel)
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)
        Interpreter(case.memory).launch(
            pk.kernel, pk.worker_grid(workers), case.block, args
        )
        case.check()

    @given(case_and_seed(), st.integers(min_value=1, max_value=4),
           st.integers(min_value=200, max_value=20_000))
    @_settings
    def test_preempt_anywhere_then_resume(self, case_seed, workers,
                                          preempt_after):
        """Preempting at an arbitrary instruction count and resuming
        always converges to the correct result."""
        name, seed = case_seed
        case = make_case(name, np.random.default_rng(seed))
        pk = make_preemptible(case.kernel)
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)

        interp = Interpreter(
            case.memory,
            instr_hook=lambda _i: control.request_preemption(),
            hook_interval=preempt_after,
        )
        interp.launch(pk.kernel, pk.worker_grid(workers), case.block, args)
        progress_after_preempt = control.tasks_started()
        assert 0 <= progress_after_preempt <= case.grid.total + workers

        control.clear_preemption()
        Interpreter(case.memory).launch(
            pk.kernel, pk.worker_grid(workers), case.block, args
        )
        case.check()
