"""Functional tests of the preemption (PTB) transformation."""

import numpy as np
import pytest

from repro.errors import SyncDivergenceError, TransformError
from repro.ptx import Interpreter, case_names, make_case, validate_kernel
from repro.transform import make_preemptible
from repro.transform.ptb import COUNTER_PARAM, FLAG_PARAM

ALL_CASES = case_names()


def run_ptb(case, workers, unified_sync=True, interp=None):
    pk = make_preemptible(case.kernel, unified_sync=unified_sync)
    control = pk.make_control(case.memory)
    args = pk.args_for(case.args, case.grid, control)
    interp = interp if interp is not None else Interpreter(case.memory)
    interp.memory = case.memory
    interp.launch(pk.kernel, pk.worker_grid(workers), case.block, args)
    return pk, control


class TestPTBSemantics:
    @pytest.mark.parametrize("name", ALL_CASES)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_preserves_output(self, name, workers):
        case = make_case(name, np.random.default_rng(61 + workers))
        run_ptb(case, workers)
        case.check()

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_more_workers_than_tasks(self, name):
        case = make_case(name, np.random.default_rng(64))
        run_ptb(case, workers=case.grid.total + 5)
        case.check()

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_transformed_kernel_validates(self, name):
        case = make_case(name, np.random.default_rng(65))
        validate_kernel(make_preemptible(case.kernel).kernel)

    def test_task_counter_reflects_total(self):
        case = make_case("iota", np.random.default_rng(66))
        _pk, control = run_ptb(case, workers=2)
        # Workers over-fetch one task each past the end.
        assert control.tasks_started() >= case.grid.total


class TestPreemptionAndResume:
    def test_flag_set_before_launch_runs_nothing(self):
        case = make_case("iota", np.random.default_rng(67))
        pk = make_preemptible(case.kernel)
        control = pk.make_control(case.memory)
        control.request_preemption()
        args = pk.args_for(case.args, case.grid, control)
        Interpreter(case.memory).launch(pk.kernel, pk.worker_grid(2),
                                        case.block, args)
        assert control.tasks_started() == 0

    def test_mid_kernel_preemption_then_resume(self):
        case = make_case("matmul_tiled", np.random.default_rng(68))
        pk = make_preemptible(case.kernel)
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)

        interp = Interpreter(case.memory,
                             instr_hook=lambda _i: control.request_preemption(),
                             hook_interval=3000)
        interp.launch(pk.kernel, pk.worker_grid(2), case.block, args)
        started = control.tasks_started()
        assert started < case.grid.total, "expected an early stop"

        control.clear_preemption()
        Interpreter(case.memory).launch(pk.kernel, pk.worker_grid(2),
                                        case.block, args)
        case.check()

    def test_repeated_preempt_resume_cycles(self):
        case = make_case("block_sum", np.random.default_rng(69))
        pk = make_preemptible(case.kernel)
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)
        for _round in range(20):
            control.clear_preemption()
            interp = Interpreter(
                case.memory,
                instr_hook=lambda _i: control.request_preemption(),
                hook_interval=700,
            )
            interp.launch(pk.kernel, pk.worker_grid(1), case.block, args)
            if control.tasks_started() >= case.grid.total:
                break
        control.clear_preemption()
        Interpreter(case.memory).launch(pk.kernel, pk.worker_grid(1),
                                        case.block, args)
        case.check()

    def test_control_reset(self):
        case = make_case("iota", np.random.default_rng(70))
        pk = make_preemptible(case.kernel)
        control = pk.make_control(case.memory)
        args = pk.args_for(case.args, case.grid, control)
        Interpreter(case.memory).launch(pk.kernel, pk.worker_grid(2),
                                        case.block, args)
        control.reset()
        assert control.tasks_started() == 0


class TestNaiveHazard:
    def test_naive_transform_stalls_on_hazard_kernel(self):
        """Early-return + barrier kernels deadlock without unified sync
        — the stall the paper's prepositional pass exists to prevent."""
        case = make_case("fold_halves", np.random.default_rng(71))
        with pytest.raises(SyncDivergenceError):
            run_ptb(case, workers=2, unified_sync=False)

    def test_naive_transform_ok_for_barrier_free_kernels(self):
        case = make_case("vector_add", np.random.default_rng(72))
        run_ptb(case, workers=2, unified_sync=False)
        case.check()

    def test_unified_sync_fixes_hazard(self):
        case = make_case("fold_halves", np.random.default_rng(73))
        run_ptb(case, workers=2, unified_sync=True)
        case.check()


class TestPTBShape:
    def test_adds_control_params(self):
        case = make_case("iota", np.random.default_rng(74))
        pk = make_preemptible(case.kernel)
        names = pk.kernel.param_names()
        assert COUNTER_PARAM in names
        assert FLAG_PARAM in names

    def test_meta_records_passes(self):
        case = make_case("iota", np.random.default_rng(75))
        assert make_preemptible(case.kernel).meta.passes == (
            "unified_sync", "preemption")
        assert make_preemptible(case.kernel, unified_sync=False).meta.passes == (
            "preemption",)

    def test_rejects_reserved_names(self):
        case = make_case("iota", np.random.default_rng(76))
        pk = make_preemptible(case.kernel)
        with pytest.raises(TransformError, match="reserved"):
            make_preemptible(pk.kernel)

    def test_worker_grid_validation(self):
        case = make_case("iota", np.random.default_rng(77))
        pk = make_preemptible(case.kernel)
        with pytest.raises(TransformError):
            pk.worker_grid(0)
