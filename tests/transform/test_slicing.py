"""Functional tests of the slicing transformation (paper Fig. 2a)."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.ptx import Dim3, Interpreter, case_names, make_case
from repro.transform import make_sliced, plan_slices
from repro.transform.slicing import GRID_PARAMS, OFFSET_PARAM

ALL_CASES = case_names()


def run_sliced(case, blocks_per_slice):
    sliced = make_sliced(case.kernel)
    interp = Interpreter(case.memory)
    for launch in sliced.plan(case.grid, blocks_per_slice):
        args = sliced.args_for(case.args, case.grid, launch.offset)
        interp.launch(sliced.kernel, launch.grid, case.block, args)
    case.check()
    return sliced


class TestPlanSlices:
    def test_covers_every_block_exactly_once(self):
        launches = plan_slices(Dim3(5, 3, 2), 7)
        covered = []
        for launch in launches:
            covered.extend(range(launch.offset, launch.offset + launch.blocks))
        assert covered == list(range(30))

    def test_last_slice_is_remainder(self):
        launches = plan_slices(Dim3(10), 4)
        assert [l.blocks for l in launches] == [4, 4, 2]

    def test_single_slice_when_large(self):
        launches = plan_slices(Dim3(4), 100)
        assert len(launches) == 1
        assert launches[0].blocks == 4

    def test_rejects_bad_slice_size(self):
        with pytest.raises(TransformError):
            plan_slices(Dim3(4), 0)


class TestSlicingSemantics:
    @pytest.mark.parametrize("name", ALL_CASES)
    def test_preserves_output_small_slices(self, name):
        case = make_case(name, np.random.default_rng(31))
        run_sliced(case, blocks_per_slice=1)

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_preserves_output_medium_slices(self, name):
        case = make_case(name, np.random.default_rng(32))
        run_sliced(case, blocks_per_slice=3)

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_preserves_output_oversized_slice(self, name):
        """One slice covering the whole grid == original execution."""
        case = make_case(name, np.random.default_rng(33))
        run_sliced(case, blocks_per_slice=10_000)

    def test_slices_executable_in_any_order(self):
        case = make_case("matmul_tiled", np.random.default_rng(34))
        sliced = make_sliced(case.kernel)
        launches = sliced.plan(case.grid, 2)
        interp = Interpreter(case.memory)
        for launch in reversed(launches):
            args = sliced.args_for(case.args, case.grid, launch.offset)
            interp.launch(sliced.kernel, launch.grid, case.block, args)
        case.check()


class TestSlicedKernelShape:
    def test_adds_offset_and_grid_params(self):
        case = make_case("vector_add", np.random.default_rng(35))
        sliced = make_sliced(case.kernel)
        names = sliced.kernel.param_names()
        assert OFFSET_PARAM in names
        for p in GRID_PARAMS:
            assert p in names

    def test_original_params_preserved(self):
        case = make_case("saxpy", np.random.default_rng(36))
        sliced = make_sliced(case.kernel)
        for p in case.kernel.param_names():
            assert sliced.kernel.has_param(p)

    def test_no_raw_ctaid_reads_remain(self):
        from repro.ptx import Special, SpecialKind
        from repro.ptx.ir import Axis

        case = make_case("grid3d_stamp", np.random.default_rng(37))
        sliced = make_sliced(case.kernel)
        # The logical grid dimensions come from parameters now.
        assert not sliced.kernel.reads_special(SpecialKind.NCTAID)
        # The only physical block-index read left is the prologue's
        # ctaid.x (the slice-local linear index); y/z are never read.
        ctaid_reads = [
            src for instr in sliced.kernel.body for src in instr.srcs
            if isinstance(src, Special) and src.kind is SpecialKind.CTAID
        ]
        assert ctaid_reads == [Special(SpecialKind.CTAID, Axis.X)]

    def test_meta_records_pass(self):
        case = make_case("iota", np.random.default_rng(38))
        sliced = make_sliced(case.kernel)
        assert sliced.meta.original_name == "iota"
        assert "slicing" in sliced.meta.passes

    def test_double_transformation_rejected(self):
        case = make_case("iota", np.random.default_rng(39))
        sliced = make_sliced(case.kernel)
        with pytest.raises(TransformError, match="reserved"):
            make_sliced(sliced.kernel)

    def test_transformed_kernel_validates(self):
        from repro.ptx import validate_kernel

        for name in ALL_CASES:
            case = make_case(name, np.random.default_rng(40))
            validate_kernel(make_sliced(case.kernel).kernel)
