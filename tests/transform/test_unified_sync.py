"""Functional tests of the unified synchronization transformation (Fig. 2b)."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.ptx import Interpreter, Opcode, case_names, make_case, validate_kernel
from repro.transform import make_unified_sync

ALL_CASES = case_names()


class TestUnifiedSyncSemantics:
    @pytest.mark.parametrize("name", ALL_CASES)
    def test_preserves_output(self, name):
        case = make_case(name, np.random.default_rng(51))
        usync = make_unified_sync(case.kernel)
        Interpreter(case.memory).launch(usync.kernel, case.grid, case.block,
                                        case.args)
        case.check()

    @pytest.mark.parametrize("name", ALL_CASES)
    def test_transformed_kernel_validates(self, name):
        case = make_case(name, np.random.default_rng(52))
        validate_kernel(make_unified_sync(case.kernel).kernel)


class TestUnifiedSyncStructure:
    def test_single_barrier_region(self):
        """All original barriers are funnelled to the unified point.

        The transformed body keeps only the transformation's own
        barriers: the prologue reset barrier and the two barriers of the
        sync point (arrival + counter-snapshot).
        """
        case = make_case("softmax_rows", np.random.default_rng(53))
        assert sum(1 for i in case.kernel.body if i.op is Opcode.BAR) >= 4
        usync = make_unified_sync(case.kernel)
        bars = sum(1 for i in usync.kernel.body if i.op is Opcode.BAR)
        assert bars == 3

    def test_single_exit_ret(self):
        case = make_case("fold_halves", np.random.default_rng(54))
        usync = make_unified_sync(case.kernel)
        rets = [i for i in usync.kernel.body if i.op is Opcode.RET]
        assert len(rets) == 1
        assert rets[0].label == usync.exit_label

    def test_counts_sites(self):
        case = make_case("block_sum", np.random.default_rng(55))
        original_bars = sum(1 for i in case.kernel.body
                            if i.op is Opcode.BAR)
        original_rets = sum(1 for i in case.kernel.body
                            if i.op is Opcode.RET)
        usync = make_unified_sync(case.kernel)
        assert usync.sync_sites == original_bars
        assert usync.return_sites == original_rets

    def test_adds_counter_shared_buffer(self):
        case = make_case("vector_add", np.random.default_rng(56))
        usync = make_unified_sync(case.kernel)
        assert usync.count_buffer in usync.kernel.shared_names()

    def test_rejects_reserved_names(self):
        case = make_case("iota", np.random.default_rng(57))
        usync = make_unified_sync(case.kernel)
        with pytest.raises(TransformError, match="reserved"):
            make_unified_sync(usync.kernel)

    def test_meta_records_pass(self):
        case = make_case("iota", np.random.default_rng(58))
        usync = make_unified_sync(case.kernel)
        assert usync.meta.passes == ("unified_sync",)


class TestUnifiedSyncStress:
    def test_many_block_shapes(self):
        """The exit protocol must work for any block size."""
        for block in (1, 2, 3, 5, 8, 16):
            case = make_case("vector_add", np.random.default_rng(59))
            usync = make_unified_sync(case.kernel)
            # Re-run on fresh memory with an adjusted block size: grid
            # large enough to cover n.
            n = case.args["n"]
            grid = -(-max(n, 1) // block) + 1
            Interpreter(case.memory).launch(usync.kernel, grid, block,
                                            case.args)
            case.check()
