"""Unit tests for channels and the wire protocol."""

import numpy as np
import pytest

from repro.errors import VirtError
from repro.ptx.interpreter import GlobalRef
from repro.ptx.ir import Dim3
from repro.ptx.library import vector_add
from repro.runtime import FatBinary
from repro.virt import (
    Channel,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyH2DRequest,
    RegisterBinaryRequest,
    Response,
    SHARED_MEMORY,
    UNIX_SOCKET,
    estimate_size,
)


class TestResponse:
    def test_success(self):
        r = Response.success(42)
        assert r.ok and r.value == 42 and r.error is None

    def test_failure(self):
        r = Response.failure("boom")
        assert not r.ok and r.error == "boom"


class TestEstimateSize:
    def test_memcpy_scales_with_payload(self):
        small = MemcpyH2DRequest("c", GlobalRef("b"), np.zeros(10))
        large = MemcpyH2DRequest("c", GlobalRef("b"), np.zeros(10_000))
        assert estimate_size(large) > estimate_size(small)

    def test_register_scales_with_code_size(self):
        fb = FatBinary.of("bin", [vector_add()])
        req = RegisterBinaryRequest("c", fb)
        assert estimate_size(req) > estimate_size(MallocRequest("c", 1))

    def test_launch_scales_with_args(self):
        few = LaunchKernelRequest("c", "k", Dim3(1), Dim3(1), {"a": 1})
        many = LaunchKernelRequest("c", "k", Dim3(1), Dim3(1),
                                   {f"a{i}": i for i in range(20)})
        assert estimate_size(many) > estimate_size(few)


class TestChannel:
    def test_call_returns_server_value(self):
        channel = Channel(lambda req: Response.success("pong"))
        assert channel.call(MallocRequest("c", 4)).value == "pong"

    def test_server_failure_raises_client_side(self):
        channel = Channel(lambda req: Response.failure("nope"))
        with pytest.raises(VirtError, match="nope"):
            channel.call(MallocRequest("c", 4))

    def test_stats_accumulate(self):
        channel = Channel(lambda req: Response.success())
        for _ in range(3):
            channel.call(MallocRequest("c", 4))
        assert channel.stats.messages == 6  # 3 requests + 3 responses
        assert channel.stats.bytes > 0
        assert channel.stats.simulated_time > 0

    def test_shared_memory_cheaper_than_socket(self):
        """The paper's §4.3 optimization, quantified by the cost model."""
        request = MemcpyH2DRequest("c", GlobalRef("b"), np.zeros(256))
        shm = Channel(lambda r: Response.success(), SHARED_MEMORY)
        sock = Channel(lambda r: Response.success(), UNIX_SOCKET)
        assert sock.cost_of(request) > 5 * shm.cost_of(request)

    def test_cost_of_matches_accounting(self):
        channel = Channel(lambda r: Response.success())
        request = MallocRequest("c", 4)
        expected = channel.cost_of(request) + channel.cost_of(
            Response.success())
        channel.call(request)
        assert channel.stats.simulated_time == pytest.approx(expected)
