"""Tests for the client-side interposition layer."""

import numpy as np
import pytest

from repro.baselines import Priority
from repro.core import ExecMode, ExecPlan, TallyServer, connect_runtime
from repro.errors import VirtError
from repro.ptx.library import vector_add
from repro.runtime import CudaRuntime, FatBinary
from repro.virt import Channel, InterposedBackend, Response


class TestInterposedBackend:
    def test_requires_client_id(self):
        channel = Channel(lambda r: Response.success())
        with pytest.raises(VirtError):
            InterposedBackend(channel, "")

    def test_every_device_call_is_forwarded(self):
        server = TallyServer()
        rt = connect_runtime(server, "c1")
        rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        ref = rt.malloc(8)
        rt.memcpy_h2d(ref, np.ones(8))
        rt.memcpy_d2h(ref, 8)
        rt.free(ref)
        rt.device_synchronize()
        forwarded = rt.backend.forwarded
        for op in ("register_binary", "malloc", "memcpy_h2d",
                   "memcpy_d2h", "free", "synchronize"):
            assert forwarded[op] == 1, op

    def test_local_state_calls_never_forwarded(self):
        """The §4.3 optimization: cudaGetDevice & friends stay local."""
        server = TallyServer()
        rt = connect_runtime(server, "c2")
        before = rt.backend.forwarded.total()
        for _ in range(100):
            rt.get_device()
            rt.get_device_count()
        stream = rt.stream_create()
        rt.stream_destroy(stream)
        assert rt.backend.forwarded.total() == before

    def test_server_errors_propagate_as_virt_errors(self):
        server = TallyServer()
        rt = connect_runtime(server, "c3")
        with pytest.raises(VirtError):
            rt.launch_kernel("unregistered", (1,), (1,), {})


class TestTransparency:
    """The same application gives identical results native vs interposed."""

    @staticmethod
    def _app(rt: CudaRuntime) -> np.ndarray:
        rt.register_fat_binary(FatBinary.of("bin", [vector_add()]))
        n = 40
        x = np.linspace(0, 1, n)
        dx, dy, dout = rt.malloc(n), rt.malloc(n), rt.malloc(n)
        rt.memcpy_h2d(dx, x)
        rt.memcpy_h2d(dy, 2 * x)
        rt.launch_kernel("vector_add", (5,), (8,),
                         {"x": dx, "y": dy, "out": dout, "n": n})
        return rt.memcpy_d2h(dout, n)

    @pytest.mark.parametrize("mode", list(ExecMode))
    def test_native_equals_interposed(self, mode):
        native = self._app(CudaRuntime())
        server = TallyServer(best_effort_plan=ExecPlan(
            mode, blocks_per_slice=2, workers=3))
        virtualized = self._app(connect_runtime(
            server, f"job-{mode.value}", Priority.BEST_EFFORT))
        np.testing.assert_array_equal(native, virtualized)
