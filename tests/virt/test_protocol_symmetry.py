"""Regression: response payloads are costed symmetrically to requests.

``estimate_size`` once charged a D2H response 32 bytes of header while
the H2D request carrying the same array up paid 64, so round-trip
traffic accounting under-billed downloads.  Both directions now pay
the same header + payload.
"""

import numpy as np

from repro.virt import (
    Channel,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
    Response,
    estimate_size,
)
from repro.virt.protocol import Envelope, checksum_of
from repro.ptx.interpreter import GlobalRef


class TestResponseCosting:
    def test_array_response_matches_array_request(self):
        data = np.zeros(1000)
        up = MemcpyH2DRequest("c", GlobalRef("b"), data)
        down = Response.success(data)
        assert estimate_size(down) == estimate_size(up)

    def test_array_response_pays_header_plus_payload(self):
        empty = Response.success(np.zeros(0))
        full = Response.success(np.zeros(100))
        assert estimate_size(empty) == estimate_size(Response.success())
        assert (estimate_size(full) - estimate_size(empty)
                == np.zeros(100).nbytes)

    def test_envelope_costed_as_its_payload(self):
        request = MemcpyD2HRequest("c", GlobalRef("b"), 100)
        envelope = Envelope(request_id=1, client_id="c", payload=request,
                            checksum=checksum_of(request))
        assert estimate_size(envelope) == estimate_size(request)

    def test_channel_bills_both_directions_equally(self):
        """A download's response leg costs what an upload's request does."""
        data = np.zeros(4096)
        channel = Channel(lambda env: Response.success(data))
        channel.call(MemcpyD2HRequest("c", GlobalRef("b"), data.size))
        up_cost = channel.cost_of(MemcpyH2DRequest("c", GlobalRef("b"),
                                                   data))
        assert channel.stats.response_bytes == estimate_size(
            Response.success(data))
        assert channel.cost_of(Response.success(data)) == up_cost
