"""Overload-resilience primitives: budgets, breakers, jittered backoff."""

import pytest

from repro.core import TallyServer
from repro.errors import (
    ChannelTimeout,
    CircuitOpen,
    DeadlineExceeded,
    RetryBudgetExhausted,
    VirtError,
)
from repro.trace import Tracer, summarize
from repro.virt import (
    Channel,
    CircuitBreaker,
    MallocRequest,
    ResilienceConfig,
    Response,
    RetryBudget,
)
from repro.virt.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)


class AlwaysDrop:
    """Injector that drops every request: the server never answers."""

    enabled = True

    def channel_fault(self, direction):
        return "drop" if direction == "request" else "none"

    def crash_now(self):
        return False


class TestRetryBudget:
    def test_fresh_calls_earn_fractional_tokens(self):
        budget = RetryBudget(ResilienceConfig(retry_budget_ratio=0.1,
                                              retry_budget_min=0.0))
        assert budget.exhausted
        for _ in range(11):
            budget.on_fresh()
        assert budget.tokens == pytest.approx(1.1)
        assert budget.try_spend()
        assert budget.exhausted

    def test_bucket_caps_the_idle_burst(self):
        config = ResilienceConfig(retry_budget_ratio=0.5,
                                  retry_budget_min=0.0,
                                  retry_budget_cap=3.0)
        budget = RetryBudget(config)
        for _ in range(1000):
            budget.on_fresh()
        assert budget.tokens == pytest.approx(3.0)

    def test_refusals_are_counted(self):
        budget = RetryBudget(ResilienceConfig(retry_budget_min=1.0))
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.refused == 1

    def test_spend_rate_bounded_by_ratio(self):
        """However the fault behaves, retries <= min + ratio * fresh."""
        config = ResilienceConfig(retry_budget_ratio=0.1,
                                  retry_budget_min=5.0,
                                  retry_budget_cap=50.0)
        budget = RetryBudget(config)
        granted = 0
        for _ in range(1000):
            budget.on_fresh()
            while budget.try_spend():  # a storm: retry as hard as allowed
                granted += 1
        assert granted <= config.retry_budget_min + 0.1 * 1000 + 1


class TestChannelBudget:
    def test_empty_budget_fails_fast(self):
        config = ResilienceConfig(retry_budget_ratio=0.0,
                                  retry_budget_min=0.0,
                                  breaker_failure_threshold=10_000)
        channel = Channel(lambda env: Response.success(),
                          faults=AlwaysDrop(), client_id="c",
                          resilience=config)
        with pytest.raises(RetryBudgetExhausted):
            channel.call(MallocRequest("c", 16))
        # the first attempt was made; no retry was paid for
        assert channel.stats.retries == 0
        assert channel.stats.budget_exhausted == 1

    def test_budget_exhaustion_is_a_channel_timeout(self):
        """Existing retry-exhaustion handling keeps working."""
        assert issubclass(RetryBudgetExhausted, ChannelTimeout)

    def test_funded_budget_allows_the_recovery_retry(self):
        class DropOnce(AlwaysDrop):
            def __init__(self):
                self.dropped = False

            def channel_fault(self, direction):
                if direction == "request" and not self.dropped:
                    self.dropped = True
                    return "drop"
                return "none"

        server = TallyServer()
        server.connect("c")
        channel = Channel(server.handle, faults=DropOnce(), client_id="c",
                          resilience=ResilienceConfig())
        assert channel.call(MallocRequest("c", 16)).ok
        assert channel.stats.retries == 1

    def test_exhaustion_emits_trace_event(self):
        tracer = Tracer()
        config = ResilienceConfig(retry_budget_ratio=0.0,
                                  retry_budget_min=0.0,
                                  breaker_failure_threshold=10_000)
        channel = Channel(lambda env: Response.success(),
                          faults=AlwaysDrop(), client_id="c",
                          tracer=tracer, resilience=config)
        with pytest.raises(RetryBudgetExhausted):
            channel.call(MallocRequest("c", 16))
        assert summarize(tracer).retry_budget_exhaustions == 1


class TestCircuitBreaker:
    def config(self, **kw):
        kw.setdefault("breaker_failure_threshold", 3)
        kw.setdefault("retry_budget_min", 50.0)
        return ResilienceConfig(**kw)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(self.config(), clock=lambda: 0.0)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.fast_fails == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(self.config(), clock=lambda: 0.0)
        for _ in range(100):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_closes_on_success(self):
        now = [0.0]
        breaker = CircuitBreaker(self.config(), clock=lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0  # any open window has long elapsed
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # only one probe slot
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(self.config(), clock=lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        first_window = breaker._open_until - now[0]
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        cfg = breaker.config
        for window in (first_window, breaker._open_until - now[0]):
            assert cfg.breaker_open_base <= window <= cfg.breaker_open_cap

    def test_open_windows_are_seed_deterministic(self):
        def windows(seed):
            now = [0.0]
            breaker = CircuitBreaker(self.config(), seed=seed,
                                     clock=lambda: now[0])
            out = []
            for _ in range(5):
                for _ in range(3):
                    breaker.record_failure()
                out.append(breaker._open_until - now[0])
                now[0] += 10.0
                assert breaker.allow()
                breaker.record_success()
            return out

        assert windows(7) == windows(7)
        assert windows(7) != windows(8)

    def test_abandon_releases_the_probe_slot(self):
        now = [0.0]
        breaker = CircuitBreaker(self.config(), clock=lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.abandon()  # e.g. the probing client crashed
        assert breaker.allow()  # slot is free again

    def test_channel_fails_fast_while_open(self):
        tracer = Tracer()
        channel = Channel(lambda env: Response.success(),
                          faults=AlwaysDrop(), client_id="c",
                          tracer=tracer, resilience=self.config())
        for _ in range(3):
            with pytest.raises(ChannelTimeout):
                channel.call(MallocRequest("c", 16))
        sends_before = channel.stats.messages
        with pytest.raises(CircuitOpen):
            channel.call(MallocRequest("c", 16))
        assert channel.stats.messages == sends_before  # nothing sent
        assert channel.stats.breaker_fast_fails == 1
        assert summarize(tracer).breaker_transitions == 1

    def test_api_failures_do_not_trip_the_breaker(self):
        """A server that answers (even with errors) is not down."""
        channel = Channel(lambda env: Response.failure("no such kernel"),
                          client_id="c", resilience=self.config())
        for _ in range(50):
            with pytest.raises(VirtError):
                channel.call(MallocRequest("c", 16))
        assert channel.breaker.state == BREAKER_CLOSED


class TestJitterDesynchronization:
    def _retry_instants(self, client_id, seed=0):
        """Simulated times at which each send attempt starts."""
        channel = Channel(lambda env: Response.success(),
                          faults=AlwaysDrop(), client_id=client_id,
                          seed=seed)
        stamps = []
        original = channel._attempt

        def spy(envelope, attempt):
            stamps.append(channel.stats.simulated_time)
            return original(envelope, attempt)

        channel._attempt = spy
        with pytest.raises(ChannelTimeout):
            channel.call(MallocRequest(client_id, 16))
        return tuple(stamps)

    def test_retry_instants_desynchronize_across_clients(self):
        """Regression: with deterministic doubling every client retried
        at identical offsets (50us, 100us, ...), re-colliding on the
        server in lockstep.  Seeded jitter must spread clients apart
        while staying replayable."""
        schedules = [self._retry_instants(f"client-{i}") for i in range(4)]
        # bit-identical replay per client ...
        assert schedules[0] == self._retry_instants("client-0")
        # ... but no two clients share a retry schedule,
        assert len(set(schedules)) == len(schedules)
        # and after the (identical) first send, no retry instants collide
        for i in range(len(schedules)):
            for j in range(i + 1, len(schedules)):
                assert not set(schedules[i][1:]) & set(schedules[j][1:])

    def test_seed_changes_the_schedule(self):
        assert self._retry_instants("c", seed=1) != \
            self._retry_instants("c", seed=2)

    def test_backoff_stays_within_configured_cap(self):
        stamps = self._retry_instants("c")
        channel_config = Channel(lambda env: Response.success()).config
        gap_budget = channel_config.timeout + channel_config.backoff_cap
        wire = 100e-6  # generous bound on one request's transport cost
        for earlier, later in zip(stamps, stamps[1:]):
            assert later - earlier <= gap_budget + wire


class TestDeadlinePropagation:
    def test_client_gives_up_past_deadline(self):
        channel = Channel(lambda env: Response.success(), client_id="c",
                          clock=lambda: 5.0)
        with pytest.raises(DeadlineExceeded):
            channel.call(MallocRequest("c", 16), deadline=4.0)
        assert channel.stats.deadline_give_ups == 1
        assert channel.stats.messages == 0  # never sent

    def test_server_sheds_past_deadline(self):
        now = [0.0]
        server = TallyServer(clock=lambda: now[0])
        channel = server.connect("c")
        # the client's view of time lags the server's: it still believes
        # the deadline is meetable, so the request goes out on the wire
        channel._clock = lambda: 0.0
        assert channel.call(MallocRequest("c", 16), deadline=1.0).ok
        now[0] = 2.0
        with pytest.raises(VirtError, match="shed"):
            channel.call(MallocRequest("c", 16), deadline=1.0)
        assert server.deadline_sheds == 1
        # shed before execution: only the first malloc exists
        assert server.client("c").memory_manager.live_buffers() == 1

    def test_deadline_sheds_traced_by_scope(self):
        tracer = Tracer()
        now = [2.0]
        server = TallyServer(clock=lambda: now[0], tracer=tracer)
        channel = server.connect("c")
        channel._clock = lambda: 0.0
        with pytest.raises(VirtError, match="shed"):
            channel.call(MallocRequest("c", 16), deadline=1.0)
        channel._clock = lambda: 9.0
        with pytest.raises(DeadlineExceeded):
            channel.call(MallocRequest("c", 16), deadline=1.0)
        assert summarize(tracer).deadline_sheds == {"server": 1, "client": 1}

    def test_no_clock_means_no_server_shedding(self):
        server = TallyServer()  # no clock injected: deadlines are inert
        channel = server.connect("c")
        channel._clock = lambda: 0.0  # client still thinks it's in time
        assert channel.call(MallocRequest("c", 16), deadline=1e-9).ok


class TestAmplification:
    def test_clean_channel_reports_one(self):
        channel = Channel(lambda env: Response.success(), client_id="c")
        for _ in range(10):
            channel.call(MallocRequest("c", 16))
        assert channel.stats.amplification == pytest.approx(1.0)

    def test_storm_without_budget_reports_full_fanout(self):
        channel = Channel(lambda env: Response.success(),
                          faults=AlwaysDrop(), client_id="c")
        with pytest.raises(ChannelTimeout):
            channel.call(MallocRequest("c", 16))
        # 1 fresh + (max_attempts - 1) retries
        assert channel.stats.amplification == channel.config.max_attempts
