"""Tests for kernel-duration mixtures (including hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import DurationMixture


class TestMixtureBasics:
    def test_of_builds_components(self):
        mix = DurationMixture.of((0.9, 1e-4, 0.5), (0.1, 1e-2, 0.3))
        assert len(mix.components) == 2

    def test_empty_mixture_rejected(self):
        with pytest.raises(WorkloadError):
            DurationMixture(())

    def test_invalid_component_rejected(self):
        with pytest.raises(WorkloadError):
            DurationMixture.of((0.0, 1e-4, 0.5))
        with pytest.raises(WorkloadError):
            DurationMixture.of((1.0, -1e-4, 0.5))
        with pytest.raises(WorkloadError):
            DurationMixture.of((1.0, 1e-4, -0.5))

    def test_sample_count(self):
        mix = DurationMixture.of((1.0, 1e-4, 0.5))
        assert len(mix.sample(77, np.random.default_rng(0))) == 77

    def test_sample_zero_rejected(self):
        mix = DurationMixture.of((1.0, 1e-4, 0.5))
        with pytest.raises(WorkloadError):
            mix.sample(0, np.random.default_rng(0))

    def test_zero_sigma_is_deterministic(self):
        mix = DurationMixture.of((1.0, 5e-4, 0.0))
        samples = mix.sample(10, np.random.default_rng(0))
        np.testing.assert_allclose(samples, 5e-4)


class TestMixtureStatistics:
    def test_sample_mean_tracks_analytic_mean(self):
        mix = DurationMixture.of((0.8, 1e-4, 0.4), (0.2, 2e-3, 0.6))
        samples = mix.sample(60_000, np.random.default_rng(1))
        assert samples.mean() == pytest.approx(mix.mean(), rel=0.05)

    def test_tail_fraction_tracks_empirical(self):
        mix = DurationMixture.of((0.9, 1e-4, 0.5), (0.1, 5e-3, 0.5))
        threshold = 1e-3
        samples = mix.sample(60_000, np.random.default_rng(2))
        empirical = float((samples > threshold).mean())
        assert mix.tail_fraction(threshold) == pytest.approx(
            empirical, abs=0.01)

    @given(
        median=st.floats(min_value=1e-6, max_value=1e-2),
        sigma=st.floats(min_value=0.0, max_value=1.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_samples_always_positive(self, median, sigma, seed):
        mix = DurationMixture.of((1.0, median, sigma))
        samples = mix.sample(100, np.random.default_rng(seed))
        assert (samples > 0).all()

    @given(
        weight=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_component_weights_respected(self, weight, seed):
        # Components with widely separated, tight medians make class
        # membership recoverable from the sample value.
        mix = DurationMixture.of((weight, 1e-5, 0.01),
                                 (1 - weight, 1e-1, 0.01))
        samples = mix.sample(4000, np.random.default_rng(seed))
        small = float((samples < 1e-3).mean())
        assert small == pytest.approx(weight, abs=0.05)

    def test_tail_fraction_monotone_in_threshold(self):
        mix = DurationMixture.of((0.7, 1e-4, 0.6), (0.3, 3e-3, 0.4))
        thresholds = [1e-5, 1e-4, 1e-3, 1e-2]
        tails = [mix.tail_fraction(t) for t in thresholds]
        assert tails == sorted(tails, reverse=True)
