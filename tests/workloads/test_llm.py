"""LLM serving workload: determinism, conservation, KV pressure."""

import numpy as np
import pytest

from repro.baselines import Ideal, Priority
from repro.errors import WorkloadError
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice
from repro.runtime.memory import MemoryManager
from repro.traffic import TrafficTrace, maf_trace, poisson_trace
from repro.workloads import (
    KVCache,
    LLM_MODELS,
    LLMServingJob,
    LLMServingModel,
    TokenLengths,
    get_llm_model,
)


def _tiny_model(**overrides) -> LLMServingModel:
    """A small serving model for fast, controllable tests."""
    params = dict(
        name="tiny_serve",
        params=1e9,
        prompt_tokens=TokenLengths(mean=32, sigma=0.5, minimum=8,
                                   maximum=64),
        output_tokens=TokenLengths(mean=16, sigma=0.5, minimum=4,
                                   maximum=32),
        prefill_token_time=10e-6,
        decode_step_time=0.5e-3,
        decode_seq_time=30e-6,
        host_gap=50e-6,
        kv_bytes_per_token=1024,
        kv_capacity_bytes=1024 * (64 + 32) * 4,  # four max-size requests
        max_batch=4,
        prefill_chunk=32,
        kv_block_tokens=8,
    )
    params.update(overrides)
    return LLMServingModel(**params)


def _run(model, traffic, duration, *, seed=0, policy_cls=Ideal):
    engine = EventLoop()
    device = GPUDevice(A100_SXM4_40GB, engine)
    policy = policy_cls(device, engine)
    job = LLMServingJob(model, traffic, policy, "llm#0", seed=seed)
    job.start()
    engine.run_until(duration)
    return job


# ---------------------------------------------------------------------------
# Model and distribution basics
# ---------------------------------------------------------------------------

def test_token_lengths_bounded():
    dist = TokenLengths(mean=100, sigma=1.0, minimum=10, maximum=200)
    rng = np.random.default_rng(0)
    samples = dist.sample(2000, rng)
    assert samples.min() >= 10
    assert samples.max() <= 200
    assert samples.dtype.kind == "i"


def test_token_lengths_validation():
    with pytest.raises(WorkloadError):
        TokenLengths(mean=0, sigma=0.5, minimum=1, maximum=10)
    with pytest.raises(WorkloadError):
        TokenLengths(mean=5, sigma=0.5, minimum=10, maximum=5)


def test_registry_lookup():
    for name in LLM_MODELS:
        assert get_llm_model(name).name == name
    with pytest.raises(WorkloadError, match="unknown LLM serving model"):
        get_llm_model("nope_serve")


def test_kernel_names_stable_per_bucket():
    """Same bucket => identical kernel (Tally's profiler cache relies
    on names implying timing)."""
    model = get_llm_model("llama7b_serve")
    spec = A100_SXM4_40GB
    a = model.decode_kernel(3, spec)
    b = model.decode_kernel(4, spec)  # both bucket to 4
    assert a.name == b.name
    assert a.block_duration == b.block_duration
    assert model.decode_kernel(5, spec).name != a.name
    p1 = model.prefill_kernel(100, spec)
    p2 = model.prefill_kernel(128, spec)
    assert p1.name == p2.name


def test_model_validation_rejects_undersized_kv_pool():
    with pytest.raises(WorkloadError, match="KV pool"):
        _tiny_model(kv_capacity_bytes=1024 * 10)


# ---------------------------------------------------------------------------
# KV cache accounting
# ---------------------------------------------------------------------------

def test_kv_cache_paged_accounting():
    model = _tiny_model()
    kv = KVCache(model)
    kv.admit(0, 9)  # 9 tokens -> two 8-token blocks
    assert kv.used_tokens == 16
    assert kv.grow(0, 16)  # fits the reserved blocks
    assert kv.used_tokens == 16
    assert kv.grow(0, 17)  # one more block
    assert kv.used_tokens == 24
    kv.release(0)
    assert kv.used_tokens == 0
    mm = kv.manager
    assert mm.allocated_elements_total == mm.freed_elements_total


def test_kv_cache_rejects_double_admit_and_unknown_grow():
    kv = KVCache(_tiny_model())
    kv.admit(0, 8)
    with pytest.raises(WorkloadError):
        kv.admit(0, 8)
    with pytest.raises(WorkloadError):
        kv.grow(7, 10)


def test_kv_cache_exhaustion_reported():
    model = _tiny_model()
    kv = KVCache(model)
    cap = kv.capacity_tokens
    kv.admit(0, cap)  # fill the pool exactly
    assert not kv.grow(0, cap + 1)
    assert not kv.can_hold(1)


# ---------------------------------------------------------------------------
# Driver: determinism
# ---------------------------------------------------------------------------

def test_same_seed_bit_identical_token_timeline():
    model = _tiny_model()
    traffic = maf_trace(0.5, model.mean_request_time(), 6.0, seed=2)
    a = _run(model, traffic, 6.0, seed=5)
    b = _run(model, traffic, 6.0, seed=5)
    assert a.token_timeline() == b.token_timeline()
    assert a.token_timeline()  # nonempty


def test_different_seed_differs():
    model = _tiny_model()
    traffic = maf_trace(0.5, model.mean_request_time(), 6.0, seed=2)
    a = _run(model, traffic, 6.0, seed=5)
    b = _run(model, traffic, 6.0, seed=6)
    assert a.token_timeline() != b.token_timeline()


# ---------------------------------------------------------------------------
# Driver: conservation
# ---------------------------------------------------------------------------

def test_every_request_completes_or_is_evicted_exactly_once():
    model = _tiny_model()
    traffic = poisson_trace(8.0, 8.0, seed=3)
    job = _run(model, traffic, 12.0)  # run past the horizon: drain
    assert job.pending_requests == 0
    assert len(job.requests) == traffic.count
    for r in job.requests:
        assert r.finished is not None
        assert r.completed != r.evicted  # exactly one outcome
    assert job.completed_requests + job.evictions == traffic.count


def test_kv_bytes_allocated_equal_freed_at_drain():
    model = _tiny_model()
    traffic = poisson_trace(8.0, 8.0, seed=3)
    job = _run(model, traffic, 12.0)
    mm = job.kv.manager
    assert mm.allocated_elements_total > 0
    assert mm.allocated_elements_total == mm.freed_elements_total
    assert mm.live_bytes() == 0
    assert job.kv.block_allocs == job.kv.block_frees


def test_token_counts_match_request_outputs():
    model = _tiny_model()
    traffic = poisson_trace(6.0, 6.0, seed=1)
    job = _run(model, traffic, 10.0)
    for r in job.requests:
        if r.completed:
            assert r.generated == r.output_tokens
            assert r.token_times[0] == r.first_token
            assert all(b >= a for a, b in zip(r.token_times,
                                              r.token_times[1:]))


# ---------------------------------------------------------------------------
# Driver: KV pressure and eviction
# ---------------------------------------------------------------------------

def test_eviction_under_kv_pressure():
    # Pool holds barely more than one max request: concurrent decodes
    # must shed someone.
    model = _tiny_model(
        kv_capacity_bytes=1024 * 112,  # ~1.2x one max-size request
        max_batch=4,
    )
    traffic = poisson_trace(30.0, 4.0, seed=0)
    job = _run(model, traffic, 8.0)
    assert job.evictions > 0
    evicted = [r for r in job.requests if r.evicted]
    assert len(evicted) == job.evictions
    # Evicted requests are terminal and their KV is freed.
    mm = job.kv.manager
    assert mm.allocated_elements_total == mm.freed_elements_total
    # Non-evicted admitted requests still completed.
    assert job.completed_requests > 0


def test_eviction_prefers_youngest():
    model = _tiny_model(kv_capacity_bytes=1024 * 112, max_batch=4)
    traffic = poisson_trace(30.0, 4.0, seed=0)
    job = _run(model, traffic, 8.0)
    evicted = [r for r in job.requests if r.evicted]
    assert evicted
    for victim in evicted:
        # At the victim's eviction instant, no *younger* admitted
        # request survived to completion having been admitted earlier.
        survivors = [r for r in job.requests
                     if r.completed and r.admitted is not None
                     and r.admitted <= victim.admitted
                     and r.finished > victim.finished]
        # Survivors may exist (they are older); the heuristic only
        # guarantees the victim was the youngest *running* at the time.
        for s in survivors:
            assert s.admitted <= victim.admitted


# ---------------------------------------------------------------------------
# Driver: crash semantics
# ---------------------------------------------------------------------------

def test_crash_sheds_state_and_frees_kv():
    model = _tiny_model()
    traffic = poisson_trace(8.0, 8.0, seed=3)
    engine = EventLoop()
    device = GPUDevice(A100_SXM4_40GB, engine)
    policy = Ideal(device, engine)
    job = LLMServingJob(model, traffic, policy, "llm#0",
                        priority=Priority.HIGH, seed=0)
    job.start()
    engine.schedule_at(2.0, lambda: (job.crash(),
                                     policy.disconnect("llm#0")))
    engine.run_until(8.0)
    assert job.crashed
    assert job.pending_requests == 0
    mm = job.kv.manager
    assert mm.allocated_elements_total == mm.freed_elements_total
    # Completions before the crash are retained.
    assert all(r.finished is None or r.finished <= 2.0
               for r in job.requests if r.completed)


# ---------------------------------------------------------------------------
# Serving summary accessors
# ---------------------------------------------------------------------------

def test_serving_summary_windows():
    model = _tiny_model()
    traffic = poisson_trace(8.0, 8.0, seed=3)
    job = _run(model, traffic, 10.0)
    s = job.serving_summary(since=1.0, until=8.0)
    assert s.completed > 0
    assert s.ttft is not None and s.inter_token is not None
    assert s.span == pytest.approx(7.0)
    with pytest.raises(WorkloadError):
        job.serving_summary(since=20.0, until=30.0)


def test_queueing_summary_reports_admission_delay():
    model = _tiny_model(max_batch=1)  # force queueing
    traffic = poisson_trace(12.0, 6.0, seed=4)
    job = _run(model, traffic, 9.0)
    q = job.queueing_summary()
    assert q is not None
    assert q.p99 > 0


def test_double_start_rejected():
    model = _tiny_model()
    traffic = poisson_trace(4.0, 2.0, seed=0)
    engine = EventLoop()
    device = GPUDevice(A100_SXM4_40GB, engine)
    policy = Ideal(device, engine)
    job = LLMServingJob(model, traffic, policy, "llm#0")
    job.start()
    with pytest.raises(WorkloadError):
        job.start()


def test_traffic_trace_type_accepted():
    model = _tiny_model()
    arrivals = np.array([0.1, 0.2, 0.3])
    traffic = TrafficTrace(arrivals, 1.0)
    job = _run(model, traffic, 3.0)
    assert len(job.requests) == 3
