"""Brownout ladder and TTFT-deadline shedding for LLM serving."""

import pytest

from repro.baselines import Ideal
from repro.errors import WorkloadError
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice
from repro.trace import Tracer, summarize
from repro.traffic import poisson_trace
from repro.workloads import (
    BrownoutConfig,
    LLMServingJob,
    LLMServingModel,
    TokenLengths,
)


def _tiny_model(**overrides) -> LLMServingModel:
    params = dict(
        name="tiny_serve",
        params=1e9,
        prompt_tokens=TokenLengths(mean=32, sigma=0.5, minimum=8,
                                   maximum=64),
        output_tokens=TokenLengths(mean=16, sigma=0.5, minimum=4,
                                   maximum=32),
        prefill_token_time=10e-6,
        decode_step_time=0.5e-3,
        decode_seq_time=30e-6,
        host_gap=50e-6,
        kv_bytes_per_token=1024,
        kv_capacity_bytes=1024 * (64 + 32) * 4,  # four max-size requests
        max_batch=4,
        prefill_chunk=32,
        kv_block_tokens=8,
    )
    params.update(overrides)
    return LLMServingModel(**params)


def _run(duration, *, rate=1000.0, horizon=0.3, seed=0, tracer=None,
         model=None, **job_kwargs):
    engine = EventLoop()
    device = GPUDevice(A100_SXM4_40GB, engine, tracer=tracer)
    policy = Ideal(device, engine)
    job = LLMServingJob(model or _tiny_model(),
                        poisson_trace(rate, horizon, seed=seed),
                        policy, "llm#0", seed=seed, **job_kwargs)
    job.start()
    engine.run_until(duration)
    return job


OVERLOAD_BROWNOUT = BrownoutConfig(queue_high=6, queue_low=1,
                                   min_dwell=0.01)


class TestBrownoutConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            BrownoutConfig(kv_low=0.9, kv_high=0.5)
        with pytest.raises(WorkloadError):
            BrownoutConfig(queue_low=5, queue_high=2)
        with pytest.raises(WorkloadError):
            BrownoutConfig(batch_shrink=0.0)
        with pytest.raises(WorkloadError):
            BrownoutConfig(max_level=0)

    def test_effective_knobs_shrink_by_level(self):
        job = _run(0.0, brownout=BrownoutConfig())
        assert job.effective_max_batch == job.model.max_batch
        assert job.effective_prefill_chunk == job.model.prefill_chunk
        job.brownout_level = 1
        assert job.effective_max_batch == 2
        assert job.effective_prefill_chunk == job.model.prefill_chunk
        job.brownout_level = 2
        assert job.effective_max_batch == 2
        assert job.effective_prefill_chunk == 16

    def test_disabled_ladder_never_shifts(self):
        job = _run(2.0)  # overload, but no brownout config
        assert job.brownout_level == 0
        assert job.brownout_shifts == 0
        assert job.effective_max_batch == job.model.max_batch


class TestLadder:
    def test_escalates_under_pressure_and_relaxes_after(self):
        job = _run(3.0, brownout=OVERLOAD_BROWNOUT)
        assert job.brownout_shifts > 0
        # pressure is long gone once the backlog drains: full service
        assert not job._waiting
        assert job.brownout_level == 0

    def test_min_dwell_bounds_the_shift_rate(self):
        job = _run(3.0, brownout=OVERLOAD_BROWNOUT)
        # at most one shift per dwell window over the whole run
        assert job.brownout_shifts <= 3.0 / OVERLOAD_BROWNOUT.min_dwell

    def test_level3_early_evicts_under_kv_pressure(self):
        config = BrownoutConfig(kv_high=0.05, kv_low=0.01,
                                queue_high=10_000, min_dwell=0.0)
        job = _run(1.0, brownout=config)
        assert job.brownout_evictions > 0
        assert job.brownout_evictions <= job.evictions

    def test_shift_events_traced(self):
        tracer = Tracer(capacity=None)
        job = _run(3.0, tracer=tracer, brownout=OVERLOAD_BROWNOUT)
        assert summarize(tracer).brownout_shifts == job.brownout_shifts > 0

    def test_deterministic_under_brownout(self):
        def outcome():
            job = _run(2.0, brownout=OVERLOAD_BROWNOUT,
                       ttft_deadline=0.05)
            return (job.token_timeline(), job.brownout_shifts,
                    job.deadline_sheds, job.evictions)

        assert outcome() == outcome()

    def test_inert_ladder_matches_no_ladder(self):
        """Thresholds that never trip must not perturb the timeline."""
        inert = BrownoutConfig(kv_high=1.0, queue_high=10 ** 9)
        with_ladder = _run(1.0, brownout=inert)
        without = _run(1.0)
        assert with_ladder.token_timeline() == without.token_timeline()
        assert with_ladder.brownout_shifts == 0


class TestTTFTDeadline:
    def test_queued_requests_past_deadline_are_shed(self):
        job = _run(2.0, ttft_deadline=0.05)
        assert job.deadline_sheds > 0
        shed = [r for r in job.requests if r.deadline_shed]
        assert len(shed) == job.deadline_sheds
        for request in shed:
            assert request.finished is not None
            assert not request.completed
            assert request.admitted is None  # shed from the queue only

    def test_conservation_with_sheds_and_evictions(self):
        job = _run(3.0, ttft_deadline=0.05, brownout=OVERLOAD_BROWNOUT)
        arrivals = len(job.requests)
        completed = sum(1 for r in job.requests if r.completed)
        evicted = sum(1 for r in job.requests if r.evicted)
        shed = sum(1 for r in job.requests if r.deadline_shed)
        assert arrivals == completed + evicted + shed + job.pending_requests

    def test_kv_blocks_conserved_after_drain(self):
        job = _run(3.0, ttft_deadline=0.05, brownout=OVERLOAD_BROWNOUT)
        assert job.pending_requests == 0
        assert job.kv.block_allocs == job.kv.block_frees

    def test_shed_events_traced_with_llm_scope(self):
        tracer = Tracer(capacity=None)
        job = _run(2.0, tracer=tracer, ttft_deadline=0.05)
        sheds = summarize(tracer).deadline_sheds
        assert sheds.get("llm") == job.deadline_sheds > 0

    def test_no_deadline_means_no_sheds(self):
        job = _run(2.0)
        assert job.deadline_sheds == 0
        assert not any(r.deadline_shed for r in job.requests)
