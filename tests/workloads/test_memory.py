"""Tests for the device-memory footprint model."""

import pytest

from repro.errors import WorkloadError
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.workloads import INFERENCE_MODELS, TRAINING_MODELS
from repro.workloads.memory import (
    A100_MEMORY_BYTES,
    PARAMETER_COUNTS,
    check_memory_fit,
    footprint_of,
    total_footprint,
)

GIB = 1024 ** 3


class TestFootprints:
    def test_every_suite_model_has_a_footprint(self):
        for name in list(TRAINING_MODELS) + list(INFERENCE_MODELS):
            fp = footprint_of(name)
            assert fp.total > 0
            assert fp.weights > 0

    def test_training_footprint_exceeds_inference_for_same_model(self):
        """Optimizer state makes training far heavier per parameter."""
        train = footprint_of("resnet50_train")
        infer = footprint_of("resnet50_infer")
        assert train.weights > 3 * infer.weights

    def test_footprint_scales_with_parameters(self):
        small = footprint_of("pointnet_train")
        large = footprint_of("whisper_train")
        ratio = PARAMETER_COUNTS["whisper_train"] / \
            PARAMETER_COUNTS["pointnet_train"]
        assert large.weights / small.weights == pytest.approx(ratio)

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            footprint_of("gpt5_train")

    def test_every_single_model_fits_an_a100(self):
        for name in PARAMETER_COUNTS:
            assert footprint_of(name).total < A100_MEMORY_BYTES, name


class TestColocationFit:
    def test_every_paper_pair_fits(self):
        """All 36 Figure 4 pairs ran on 40 GB A100s in the paper."""
        for infer in INFERENCE_MODELS:
            for train in TRAINING_MODELS:
                check_memory_fit([infer, train])

    def test_total_is_additive(self):
        names = ["bert_infer", "gpt2_train"]
        assert total_footprint(names) == sum(
            footprint_of(n).total for n in names)

    def test_overcommit_rejected_with_breakdown(self):
        plan = ["llama2_infer", "whisper_train", "gpt2_train",
                "gptneo_infer"]
        with pytest.raises(WorkloadError, match="GiB"):
            check_memory_fit(plan)

    def test_custom_capacity(self):
        with pytest.raises(WorkloadError):
            check_memory_fit(["bert_infer"], capacity_bytes=GIB // 2)
        check_memory_fit(["bert_infer"], capacity_bytes=4 * GIB)


class TestHarnessIntegration:
    def test_run_colocation_enforces_memory(self):
        cfg = RunConfig(duration=2.0, warmup=0.5,
                        memory_capacity_bytes=2 * GIB)
        with pytest.raises(WorkloadError, match="GiB"):
            run_colocation("Tally", [
                JobSpec.inference("bert_infer", load=0.2),
                JobSpec.training("whisper_train"),
            ], cfg)

    def test_check_can_be_disabled(self):
        cfg = RunConfig(duration=1.5, warmup=0.5,
                        memory_capacity_bytes=1 * GIB, check_memory=False)
        result = run_colocation("Ideal", [
            JobSpec.inference("resnet50_infer", load=0.2),
        ], cfg)
        assert result.job("resnet50_infer#0").completed > 0
