"""Tests for the Table 2 workload models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gpu import A100_SXM4_40GB
from repro.workloads import (
    INFERENCE_MODELS,
    TRAINING_MODELS,
    WorkloadKind,
    get_model,
)

SPEC = A100_SXM4_40GB
ALL_MODELS = {**TRAINING_MODELS, **INFERENCE_MODELS}


class TestSuiteComposition:
    def test_six_training_six_inference(self):
        assert len(TRAINING_MODELS) == 6
        assert len(INFERENCE_MODELS) == 6

    def test_get_model_lookup(self):
        assert get_model("bert_infer").kind is WorkloadKind.INFERENCE
        assert get_model("bert_train").kind is WorkloadKind.TRAINING

    def test_get_model_unknown(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_model("alexnet")


class TestTraceConstruction:
    @pytest.mark.parametrize("name", sorted(ALL_MODELS))
    def test_trace_is_deterministic(self, name):
        model = ALL_MODELS[name]
        a = model.build_trace(SPEC, seed=3)
        b = model.build_trace(SPEC, seed=3)
        assert [k.name for k in a.kernels] == [k.name for k in b.kernels]
        assert a.gpu_time == b.gpu_time

    @pytest.mark.parametrize("name", sorted(ALL_MODELS))
    def test_different_seeds_differ(self, name):
        model = ALL_MODELS[name]
        a = model.build_trace(SPEC, seed=1)
        b = model.build_trace(SPEC, seed=2)
        assert a.gpu_time != b.gpu_time

    @pytest.mark.parametrize("name", sorted(ALL_MODELS))
    def test_kernel_count_matches_spec(self, name):
        model = ALL_MODELS[name]
        trace = model.build_trace(SPEC)
        assert len(trace.kernels) == model.num_kernels

    @pytest.mark.parametrize("name", sorted(ALL_MODELS))
    def test_gpu_time_equals_sum_of_kernel_durations(self, name):
        model = ALL_MODELS[name]
        trace = model.build_trace(SPEC)
        assert trace.kernel_durations(SPEC).sum() == pytest.approx(
            trace.gpu_time, rel=1e-9)

    @pytest.mark.parametrize("name", sorted(TRAINING_MODELS))
    def test_host_gap_fraction_respected(self, name):
        model = TRAINING_MODELS[name]
        trace = model.build_trace(SPEC)
        fraction = trace.host_time / trace.duration
        assert fraction == pytest.approx(model.host_gap_fraction, abs=0.02)

    def test_inference_traces_have_no_host_gaps(self):
        for name, model in INFERENCE_MODELS.items():
            trace = model.build_trace(SPEC)
            assert trace.host_time == 0.0, name

    @pytest.mark.parametrize("name", sorted(ALL_MODELS))
    def test_kernel_names_unique_and_stable(self, name):
        trace = ALL_MODELS[name].build_trace(SPEC)
        names = [k.name for k in trace.kernels]
        assert len(names) == len(set(names))
        assert all(n.startswith(name) for n in names)


class TestPaperCalibration:
    def test_resnet50_kernels_are_overwhelmingly_short(self):
        """Paper §5.5: 99.3 % of ResNet50 kernels finish < 0.1 ms."""
        trace = TRAINING_MODELS["resnet50_train"].build_trace(SPEC)
        durations = trace.kernel_durations(SPEC)
        fraction = float((durations < 0.1e-3).mean())
        assert fraction > 0.97

    def test_whisper_kernels_have_heavy_tail(self):
        """Paper §5.5: 5.6 % of Whisper kernels outlast a whole BERT
        inference (3.93 ms)."""
        trace = TRAINING_MODELS["whisper_train"].build_trace(SPEC)
        durations = trace.kernel_durations(SPEC)
        fraction = float((durations > 3.93e-3).mean())
        assert 0.02 < fraction < 0.12

    def test_inference_latencies_track_table2(self):
        for name in ("resnet50_infer", "bert_infer", "yolov6m_infer"):
            model = INFERENCE_MODELS[name]
            trace = model.build_trace(SPEC)
            ratio = trace.duration / model.paper_value
            assert 0.7 < ratio < 1.4, f"{name}: {ratio:.2f}"

    def test_condensation_factors_reported(self):
        for name, model in ALL_MODELS.items():
            trace = model.build_trace(SPEC)
            factor = model.condensation(trace)
            assert factor >= 0.5, name
            if name in ("llama2_infer", "whisper_train"):
                assert factor > 5, f"{name} should be heavily condensed"

    def test_bert_inference_duration_near_3_93_ms(self):
        trace = INFERENCE_MODELS["bert_infer"].build_trace(SPEC)
        assert trace.duration == pytest.approx(3.93e-3, rel=0.25)

    def test_relative_training_speeds_preserved(self):
        """PointNet iterates fastest, Whisper slowest (Table 2 order)."""
        durations = {
            name: model.build_trace(SPEC).duration
            for name, model in TRAINING_MODELS.items()
        }
        assert min(durations, key=durations.get) == "pointnet_train"
        assert max(durations, key=durations.get) == "whisper_train"
