#!/usr/bin/env python
"""Verify that every ``repro.*`` dotted path mentioned in the docs exists.

Scans ``docs/*.md`` and ``README.md`` for references like
``repro.trace.Tracer`` or ``repro.gpu.device.GPUDevice`` and resolves
each one: the longest importable prefix is imported as a module and the
remainder is looked up with ``getattr``.  Docs that name modules or
symbols that have been renamed or removed make the run fail, so the
prose cannot drift from the code.

Usage:  PYTHONPATH=src python tools/check_doc_refs.py
Exits non-zero and lists every unresolvable reference.
"""

from __future__ import annotations

import importlib
import pathlib
import re
import sys

REF = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def iter_refs(text: str):
    """Dotted repro.* names in *text*, with duplicates collapsed."""
    return sorted(set(REF.findall(text)))


def resolve(ref: str) -> bool:
    """True if *ref* names an importable module or an attribute chain
    hanging off one."""
    parts = ref.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check(root: pathlib.Path) -> list[tuple[str, str]]:
    """All (file, ref) pairs that fail to resolve under *root*."""
    files = sorted(root.glob("docs/*.md")) + [root / "README.md"]
    failures = []
    for path in files:
        if not path.exists():
            continue
        for ref in iter_refs(path.read_text(encoding="utf-8")):
            if not resolve(ref):
                failures.append((str(path.relative_to(root)), ref))
    return failures


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    failures = check(root)
    if failures:
        print("unresolvable module references in docs:")
        for path, ref in failures:
            print(f"  {path}: {ref}")
        return 1
    print("all doc references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
